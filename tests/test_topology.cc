/**
 * @file
 * Tests for XML/URDF parsing, the kinematic tree, and Table 3 metrics.
 */

#include <gtest/gtest.h>

#include "dynamics/crba.h"
#include "dynamics/robot_state.h"
#include "linalg/matrix.h"
#include "topology/robot_library.h"
#include "topology/robot_model.h"
#include "topology/topology_info.h"
#include "topology/urdf_parser.h"
#include "topology/xml.h"

namespace roboshape {
namespace topology {
namespace {

using spatial::JointModel;
using spatial::JointType;
using spatial::SpatialInertia;
using spatial::SpatialTransform;
using spatial::Vec3;

// ---------------------------------------------------------------- XML ----

TEST(Xml, ParsesElementsAttributesAndNesting)
{
    auto root = parse_xml(
        "<?xml version=\"1.0\"?>\n"
        "<robot name=\"r2\">\n"
        "  <!-- a comment -->\n"
        "  <link name=\"a\"/>\n"
        "  <joint name=\"j\" type=\"revolute\"><parent link=\"a\"/></joint>\n"
        "</robot>");
    EXPECT_EQ(root->name, "robot");
    EXPECT_EQ(root->attribute("name"), "r2");
    ASSERT_EQ(root->children.size(), 2u);
    EXPECT_EQ(root->children[0]->name, "link");
    const XmlElement *joint = root->child("joint");
    ASSERT_NE(joint, nullptr);
    EXPECT_EQ(joint->attribute("type"), "revolute");
    ASSERT_NE(joint->child("parent"), nullptr);
    EXPECT_EQ(joint->child("parent")->attribute("link"), "a");
}

TEST(Xml, DecodesEntities)
{
    auto root = parse_xml("<a name=\"x &lt; y &amp; z\"/>");
    EXPECT_EQ(root->attribute("name"), "x < y & z");
}

TEST(Xml, CapturesText)
{
    auto root = parse_xml("<a>  hello world  </a>");
    EXPECT_EQ(root->text, "hello world");
}

TEST(Xml, SingleQuotedAttributes)
{
    auto root = parse_xml("<a b='c d'/>");
    EXPECT_EQ(root->attribute("b"), "c d");
}

TEST(Xml, RejectsMismatchedTags)
{
    EXPECT_THROW(parse_xml("<a><b></a></b>"), XmlError);
}

TEST(Xml, RejectsUnterminatedInput)
{
    EXPECT_THROW(parse_xml("<a><b/>"), XmlError);
    EXPECT_THROW(parse_xml("<a b=\"unclosed/>"), XmlError);
}

TEST(Xml, RejectsTrailingContent)
{
    EXPECT_THROW(parse_xml("<a/><b/>"), XmlError);
}

TEST(Xml, ChildrenNamedFiltersCorrectly)
{
    auto root = parse_xml("<r><x/><y/><x/></r>");
    EXPECT_EQ(root->children_named("x").size(), 2u);
    EXPECT_EQ(root->children_named("y").size(), 1u);
    EXPECT_EQ(root->children_named("z").size(), 0u);
}

// --------------------------------------------------------------- model ----

RobotModel
two_limb_model()
{
    // Base with two limbs: a 2-link arm and a 1-link head, declared out of
    // order to exercise preorder canonicalization.
    RobotModelBuilder b("toy");
    const JointModel rz(JointType::kRevolute, Vec3::unit_z());
    const SpatialInertia inertia = SpatialInertia::from_mass_com_inertia(
        1.0, {0.0, 0.0, 0.1}, spatial::Mat3::identity() * 0.01);
    b.add_link("arm2", "arm1", rz, SpatialTransform(), inertia);
    b.add_link("head", "", rz, SpatialTransform(), inertia);
    b.add_link("arm1", "", rz, SpatialTransform(), inertia);
    return b.finalize();
}

TEST(RobotModel, PreorderCanonicalization)
{
    const RobotModel m = two_limb_model();
    ASSERT_EQ(m.num_links(), 3u);
    // Declaration order of roots is preserved (head then arm1), and arm2
    // follows its parent immediately.
    EXPECT_EQ(m.link(0).name, "head");
    EXPECT_EQ(m.link(1).name, "arm1");
    EXPECT_EQ(m.link(2).name, "arm2");
    EXPECT_EQ(m.parent(2), 1);
    EXPECT_EQ(m.parent(1), kBaseParent);
    ASSERT_EQ(m.base_children().size(), 2u);
}

TEST(RobotModel, RejectsDuplicateNames)
{
    RobotModelBuilder b("dup");
    const JointModel rz(JointType::kRevolute, Vec3::unit_z());
    b.add_link("a", "", rz, SpatialTransform(), SpatialInertia());
    EXPECT_THROW(
        b.add_link("a", "", rz, SpatialTransform(), SpatialInertia()),
        std::invalid_argument);
}

TEST(RobotModel, RejectsUnknownParent)
{
    RobotModelBuilder b("orphan");
    const JointModel rz(JointType::kRevolute, Vec3::unit_z());
    b.add_link("a", "ghost", rz, SpatialTransform(), SpatialInertia());
    EXPECT_THROW(b.finalize(), std::invalid_argument);
}

TEST(RobotModel, RejectsCycles)
{
    RobotModelBuilder b("cycle");
    const JointModel rz(JointType::kRevolute, Vec3::unit_z());
    b.add_link("a", "b", rz, SpatialTransform(), SpatialInertia());
    b.add_link("b", "a", rz, SpatialTransform(), SpatialInertia());
    EXPECT_THROW(b.finalize(), std::invalid_argument);
}

TEST(RobotModel, RejectsFixedJointsOnMovingLinks)
{
    RobotModelBuilder b("fixed");
    b.add_link("a", "", JointModel(), SpatialTransform(), SpatialInertia());
    EXPECT_THROW(b.finalize(), std::invalid_argument);
}

TEST(RobotModel, FindLinkByName)
{
    const RobotModel m = two_limb_model();
    EXPECT_EQ(m.find_link("arm2"), 2);
    EXPECT_EQ(m.find_link("nope"), -1);
}

// -------------------------------------------------------------- info ----

TEST(TopologyInfo, DepthsSubtreesAndAncestry)
{
    const RobotModel m = two_limb_model();
    const TopologyInfo t(m);
    EXPECT_EQ(t.depth(0), 1u);
    EXPECT_EQ(t.depth(2), 2u);
    EXPECT_EQ(t.subtree_size(1), 2u);
    EXPECT_TRUE(t.is_ancestor_or_self(1, 2));
    EXPECT_FALSE(t.is_ancestor_or_self(2, 1));
    EXPECT_FALSE(t.is_ancestor_or_self(0, 2));
    EXPECT_TRUE(t.is_leaf(0));
    EXPECT_FALSE(t.is_leaf(1));
    ASSERT_EQ(t.limb_spans().size(), 2u);
    EXPECT_EQ(t.limb_spans()[1], (std::pair<std::size_t, std::size_t>{1, 3}));
}

TEST(TopologyInfo, IsAncestorMatchesParentChainBruteForce)
{
    for (RobotId id : all_robots()) {
        const RobotModel m = build_robot(id);
        const TopologyInfo t(m);
        const std::size_t n = m.num_links();
        for (std::size_t a = 0; a < n; ++a) {
            for (std::size_t b = 0; b < n; ++b) {
                bool expected = false;
                int cur = static_cast<int>(b);
                while (cur != kBaseParent) {
                    if (cur == static_cast<int>(a)) {
                        expected = true;
                        break;
                    }
                    cur = m.parent(cur);
                }
                EXPECT_EQ(t.is_ancestor_or_self(a, b), expected)
                    << robot_name(id) << " a=" << a << " b=" << b;
            }
        }
    }
}

TEST(TopologyInfo, RootPathEndsAtSelfAndStartsAtLimbRoot)
{
    const RobotModel m = build_robot(RobotId::kBaxter);
    const TopologyInfo t(m);
    for (std::size_t i = 0; i < m.num_links(); ++i) {
        const auto path = t.root_path(i);
        ASSERT_FALSE(path.empty());
        EXPECT_EQ(path.back(), i);
        EXPECT_EQ(m.parent(path.front()), kBaseParent);
        EXPECT_EQ(path.size(), t.depth(i));
    }
}

/** Expected Table 3 values (see DESIGN.md reconstruction notes). */
struct Table3Row
{
    RobotId id;
    std::size_t total_links;
    std::size_t max_leaf_depth;
    double avg_leaf_depth;
    std::size_t max_descendants;
    double leaf_depth_stdev;
};

class Table3Metrics : public ::testing::TestWithParam<Table3Row>
{
};

TEST_P(Table3Metrics, MatchesPaper)
{
    const Table3Row row = GetParam();
    const RobotModel m = build_robot(row.id);
    const TopologyMetrics got = TopologyInfo(m).metrics();
    EXPECT_EQ(got.total_links, row.total_links);
    EXPECT_EQ(got.max_leaf_depth, row.max_leaf_depth);
    EXPECT_NEAR(got.avg_leaf_depth, row.avg_leaf_depth, 1e-9);
    EXPECT_EQ(got.max_descendants, row.max_descendants);
    EXPECT_NEAR(got.leaf_depth_stdev, row.leaf_depth_stdev, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    AllRobots, Table3Metrics,
    ::testing::Values(
        Table3Row{RobotId::kIiwa, 7, 7, 7.0, 7, 0.0},
        Table3Row{RobotId::kHyq, 12, 3, 3.0, 3, 0.0},
        // Baxter stdev: population stdev of {1, 7, 7} = 2.828 (the paper
        // prints 2.3; see DESIGN.md).
        Table3Row{RobotId::kBaxter, 15, 7, 5.0, 7, 2.8284},
        Table3Row{RobotId::kJaco2, 12, 9, 9.0, 12, 0.0},
        Table3Row{RobotId::kJaco3, 15, 9, 9.0, 15, 0.0},
        Table3Row{RobotId::kHyqWithArm, 19, 7, 3.8, 7, 1.6}),
    [](const auto &info) {
        std::string name = robot_name(info.param.id);
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name + "_" + std::to_string(info.param.total_links);
    });

TEST(TopologyInfo, MassMatrixSparsityMatchesPaper)
{
    // Paper Sec. 5.2: iiwa fully dense, HyQ 75% sparse, Baxter 56% sparse
    // (99 nonzeros of 225).
    const RobotModel iiwa = build_robot(RobotId::kIiwa);
    EXPECT_NEAR(TopologyInfo(iiwa).mass_matrix_sparsity(), 0.0, 1e-12);
    const RobotModel hyq = build_robot(RobotId::kHyq);
    EXPECT_NEAR(TopologyInfo(hyq).mass_matrix_sparsity(), 0.75, 1e-12);
    const RobotModel baxter_model = build_robot(RobotId::kBaxter);
    const TopologyInfo baxter(baxter_model);
    EXPECT_NEAR(baxter.mass_matrix_sparsity(), 1.0 - 99.0 / 225.0, 1e-12);
}

TEST(TopologyInfo, MaskAgreesWithNumericalMassMatrix)
{
    for (RobotId id : all_robots()) {
        const RobotModel m = build_robot(id);
        const TopologyInfo t(m);
        const auto mask = t.mass_matrix_mask();
        const auto state = dynamics::random_state(m, 17);
        const linalg::Matrix h = dynamics::crba(m, state.q);
        for (std::size_t i = 0; i < m.num_links(); ++i) {
            for (std::size_t j = 0; j < m.num_links(); ++j) {
                if (!mask[i][j]) {
                    EXPECT_NEAR(h(i, j), 0.0, 1e-12)
                        << robot_name(id) << " (" << i << "," << j << ")";
                }
            }
        }
    }
}

TEST(TopologyInfo, BranchLinks)
{
    // Jaco-3 branches at arm_link6; HyQ and iiwa have no in-tree branches.
    const RobotModel jaco = build_robot(RobotId::kJaco3);
    const TopologyInfo tj(jaco);
    ASSERT_EQ(tj.branch_links().size(), 1u);
    EXPECT_EQ(jaco.link(tj.branch_links()[0]).name, "arm_link6");
    const RobotModel iiwa = build_robot(RobotId::kIiwa);
    EXPECT_TRUE(TopologyInfo(iiwa).branch_links().empty());
    const RobotModel hyq = build_robot(RobotId::kHyq);
    EXPECT_TRUE(TopologyInfo(hyq).branch_links().empty());
}

// --------------------------------------------------------------- urdf ----

TEST(Urdf, RoundTripPreservesTopologyAndDynamics)
{
    for (RobotId id : all_robots()) {
        const RobotModel direct = build_robot(id);
        const RobotModel parsed = parse_urdf(robot_urdf(id));
        ASSERT_EQ(parsed.num_links(), direct.num_links()) << robot_name(id);
        for (std::size_t i = 0; i < direct.num_links(); ++i) {
            EXPECT_EQ(parsed.link(i).name, direct.link(i).name);
            EXPECT_EQ(parsed.parent(i), direct.parent(i));
        }
        // Dynamics-level equivalence: identical mass matrices at random q.
        const auto state = dynamics::random_state(direct, 23);
        const linalg::Matrix hd = dynamics::crba(direct, state.q);
        const linalg::Matrix hp = dynamics::crba(parsed, state.q);
        EXPECT_LT(linalg::max_abs_diff(hd, hp), 1e-10) << robot_name(id);
    }
}

TEST(Urdf, FoldsFixedJoints)
{
    const char *urdf = R"(
      <robot name="folding">
        <link name="base"/>
        <link name="arm"><inertial>
          <origin xyz="0 0 0.1"/><mass value="2"/>
          <inertia ixx="0.1" iyy="0.1" izz="0.05"/></inertial></link>
        <link name="tool"><inertial>
          <origin xyz="0 0 0.05"/><mass value="0.5"/>
          <inertia ixx="0.01" iyy="0.01" izz="0.01"/></inertial></link>
        <link name="tip"><inertial>
          <origin xyz="0 0 0.02"/><mass value="0.2"/>
          <inertia ixx="0.001" iyy="0.001" izz="0.001"/></inertial></link>
        <joint name="j1" type="revolute">
          <parent link="base"/><child link="arm"/>
          <origin xyz="0 0 0.2"/><axis xyz="0 0 1"/></joint>
        <joint name="jf" type="fixed">
          <parent link="arm"/><child link="tool"/>
          <origin xyz="0 0 0.3"/></joint>
        <joint name="j2" type="revolute">
          <parent link="tool"/><child link="tip"/>
          <origin xyz="0 0 0.1"/><axis xyz="0 1 0"/></joint>
      </robot>)";
    const RobotModel m = parse_urdf(urdf);
    ASSERT_EQ(m.num_links(), 2u);
    EXPECT_EQ(m.link(0).name, "arm");
    EXPECT_EQ(m.link(1).name, "tip");
    EXPECT_EQ(m.parent(1), 0);
    // Folded mass: arm absorbs the tool.
    EXPECT_NEAR(m.link(0).inertia.mass(), 2.5, 1e-12);
    EXPECT_NEAR(m.link(1).inertia.mass(), 0.2, 1e-12);
    // The tip joint origin accumulates the fixed offset: 0.3 + 0.1 from arm.
    EXPECT_NEAR(m.link(1).x_tree.translation_vector().z, 0.4, 1e-12);
}

TEST(Urdf, RejectsStructuralErrors)
{
    EXPECT_THROW(parse_urdf("<robot name=\"x\"/>"), UrdfError);
    EXPECT_THROW(parse_urdf("<notrobot/>"), UrdfError);
    // Unknown parent link.
    EXPECT_THROW(parse_urdf(R"(
      <robot name="x"><link name="a"/><link name="b"/>
        <joint name="j" type="revolute">
          <parent link="ghost"/><child link="b"/><axis xyz="0 0 1"/>
        </joint></robot>)"),
                 UrdfError);
    // Two roots (disconnected link).
    EXPECT_THROW(parse_urdf(R"(
      <robot name="x"><link name="a"/><link name="b"/></robot>)"),
                 UrdfError);
    // Duplicate child.
    EXPECT_THROW(parse_urdf(R"(
      <robot name="x"><link name="a"/><link name="b"/>
        <joint name="j1" type="revolute">
          <parent link="a"/><child link="b"/><axis xyz="0 0 1"/></joint>
        <joint name="j2" type="revolute">
          <parent link="a"/><child link="b"/><axis xyz="0 0 1"/></joint>
      </robot>)"),
                 UrdfError);
}

TEST(Urdf, RpyRotationsAffectKinematicsCorrectly)
{
    // A joint origin rotated 90 deg about z turns the child's x axis into
    // the parent's y axis; verify through the parsed model's dynamics.
    const char *urdf = R"(
      <robot name="rpy">
        <link name="base"/>
        <link name="a"><inertial>
          <origin xyz="0.2 0 0"/><mass value="1"/>
          <inertia ixx="0.01" iyy="0.01" izz="0.01"/></inertial></link>
        <joint name="j1" type="revolute">
          <parent link="base"/><child link="a"/>
          <origin xyz="0 0 0.1" rpy="0 0 1.5707963267948966"/>
          <axis xyz="0 0 1"/></joint>
      </robot>)";
    const RobotModel m = parse_urdf(urdf);
    ASSERT_EQ(m.num_links(), 1u);
    // At q=0 the link's COM (0.2 along child x) lies along parent +y.
    const linalg::Vector q(1);
    const auto fk_x = m.link(0).x_tree.rotation_matrix().transpose_mul(
        {0.2, 0.0, 0.0});
    EXPECT_NEAR(fk_x.x, 0.0, 1e-9);
    EXPECT_NEAR(fk_x.y, 0.2, 1e-9);
    // Gravity torque about the joint's z axis is zero regardless (moment
    // arm parallel to gravity's lever), but the mass matrix must see the
    // 0.2 m offset: M(0,0) = izz + m r^2.
    const linalg::Matrix h = dynamics::crba(m, q);
    EXPECT_NEAR(h(0, 0), 0.01 + 1.0 * 0.2 * 0.2, 1e-9);
}

TEST(Urdf, InertialRpyRotatesTheTensor)
{
    // An inertia diag(1,2,3) in a frame rotated 90 deg about x must read
    // diag(1,3,2) in link axes.
    const char *urdf = R"(
      <robot name="tensor">
        <link name="base"/>
        <link name="a"><inertial>
          <origin xyz="0 0 0" rpy="1.5707963267948966 0 0"/>
          <mass value="2"/>
          <inertia ixx="1" iyy="2" izz="3"/></inertial></link>
        <joint name="j1" type="revolute">
          <parent link="base"/><child link="a"/>
          <axis xyz="0 0 1"/></joint>
      </robot>)";
    const RobotModel m = parse_urdf(urdf);
    const auto &ibar = m.link(0).inertia.ibar();
    EXPECT_NEAR(ibar(0, 0), 1.0, 1e-9);
    EXPECT_NEAR(ibar(1, 1), 3.0, 1e-9);
    EXPECT_NEAR(ibar(2, 2), 2.0, 1e-9);
}

TEST(Urdf, WritesAndParsesFiles)
{
    const std::string dir = ::testing::TempDir();
    const auto paths = write_urdf_files(dir);
    ASSERT_EQ(paths.size(),
              all_robots().size() + extended_robots().size());
    const RobotModel m = parse_urdf_file(paths[0]);
    EXPECT_EQ(m.num_links(), 7u); // iiwa is first
}

TEST(RobotLibrary, NamesAndShippedSubset)
{
    EXPECT_STREQ(robot_name(RobotId::kHyqWithArm), "HyQ+arm");
    EXPECT_EQ(shipped_robots().size(), 3u);
    EXPECT_EQ(all_robots().size(), 6u);
    EXPECT_EQ(extended_robots().size(), 3u);
}

TEST(RobotLibrary, ExtendedFleetMetrics)
{
    // Bittle: 4 x 2-link legs.
    const RobotModel bittle = build_robot(RobotId::kBittle);
    const TopologyMetrics bm = TopologyInfo(bittle).metrics();
    EXPECT_EQ(bm.total_links, 8u);
    EXPECT_EQ(bm.max_leaf_depth, 2u);
    EXPECT_EQ(bm.max_descendants, 2u);
    EXPECT_EQ(bittle.base_children().size(), 4u);

    // Pepper: 3-link hip column carrying a 2-link head and two 5-link
    // arms — branch points below the base (off-diagonal mass coupling).
    const RobotModel pepper = build_robot(RobotId::kPepper);
    const TopologyInfo pt(pepper);
    const TopologyMetrics pm = pt.metrics();
    EXPECT_EQ(pm.total_links, 15u);
    EXPECT_EQ(pm.max_leaf_depth, 8u);
    EXPECT_EQ(pm.max_descendants, 15u);
    EXPECT_EQ(pt.branch_links().size(), 1u); // hip_link3
    EXPECT_LT(pt.mass_matrix_sparsity(), 0.5); // heavily coupled

    // Humanoid: 27 links over five limbs.
    const RobotModel humanoid = build_robot(RobotId::kHumanoid);
    const TopologyMetrics hm = TopologyInfo(humanoid).metrics();
    EXPECT_EQ(hm.total_links, 27u);
    EXPECT_EQ(hm.max_leaf_depth, 7u);
    EXPECT_NEAR(hm.avg_leaf_depth, (6 + 6 + 7 + 7 + 1) / 5.0, 1e-12);
    EXPECT_EQ(humanoid.base_children().size(), 5u);
}

TEST(RobotLibrary, ExtendedFleetRoundTripsThroughUrdf)
{
    for (RobotId id : extended_robots()) {
        const RobotModel direct = build_robot(id);
        const RobotModel parsed = parse_urdf(robot_urdf(id));
        ASSERT_EQ(parsed.num_links(), direct.num_links()) << robot_name(id);
        const auto state = dynamics::random_state(direct, 3);
        EXPECT_LT(linalg::max_abs_diff(dynamics::crba(direct, state.q),
                                       dynamics::crba(parsed, state.q)),
                  1e-10)
            << robot_name(id);
    }
}

} // namespace
} // namespace topology
} // namespace roboshape
