/**
 * @file
 * Tests for XML/URDF parsing, the kinematic tree, and Table 3 metrics.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "dynamics/crba.h"
#include "dynamics/robot_state.h"
#include "linalg/matrix.h"
#include "topology/robot_library.h"
#include "topology/robot_model.h"
#include "topology/topology_info.h"
#include "topology/urdf_parser.h"
#include "topology/xml.h"

namespace roboshape {
namespace topology {
namespace {

using spatial::JointModel;
using spatial::JointType;
using spatial::SpatialInertia;
using spatial::SpatialTransform;
using spatial::Vec3;

// ---------------------------------------------------------------- XML ----

TEST(Xml, ParsesElementsAttributesAndNesting)
{
    auto root = parse_xml(
        "<?xml version=\"1.0\"?>\n"
        "<robot name=\"r2\">\n"
        "  <!-- a comment -->\n"
        "  <link name=\"a\"/>\n"
        "  <joint name=\"j\" type=\"revolute\"><parent link=\"a\"/></joint>\n"
        "</robot>");
    EXPECT_EQ(root->name, "robot");
    EXPECT_EQ(root->attribute("name"), "r2");
    ASSERT_EQ(root->children.size(), 2u);
    EXPECT_EQ(root->children[0]->name, "link");
    const XmlElement *joint = root->child("joint");
    ASSERT_NE(joint, nullptr);
    EXPECT_EQ(joint->attribute("type"), "revolute");
    ASSERT_NE(joint->child("parent"), nullptr);
    EXPECT_EQ(joint->child("parent")->attribute("link"), "a");
}

TEST(Xml, DecodesEntities)
{
    auto root = parse_xml("<a name=\"x &lt; y &amp; z\"/>");
    EXPECT_EQ(root->attribute("name"), "x < y & z");
}

TEST(Xml, CapturesText)
{
    auto root = parse_xml("<a>  hello world  </a>");
    EXPECT_EQ(root->text, "hello world");
}

TEST(Xml, SingleQuotedAttributes)
{
    auto root = parse_xml("<a b='c d'/>");
    EXPECT_EQ(root->attribute("b"), "c d");
}

TEST(Xml, RejectsMismatchedTags)
{
    EXPECT_THROW(parse_xml("<a><b></a></b>"), XmlError);
}

// ----------------------------------------------- XML hardening (PR 3) ----

/** Runs @p fn expecting an XmlError; returns it for detailed assertions. */
template <typename Fn>
XmlError
expect_xml_error(Fn &&fn)
{
    try {
        fn();
    } catch (const XmlError &e) {
        return e;
    }
    ADD_FAILURE() << "expected XmlError";
    return XmlError(ParseErrorCode::kNone, "", SourceLocation{});
}

TEST(Xml, ErrorsCarryLineAndColumn)
{
    // The stray '=' is on line 3, right after "<joint " (column 8).
    const XmlError e = expect_xml_error([] {
        parse_xml("<robot>\n"
                  "  <link name=\"a\"/>\n"
                  "  <joint =\"oops\"/>\n"
                  "</robot>");
    });
    EXPECT_EQ(e.code(), ParseErrorCode::kXmlExpectedName);
    EXPECT_EQ(e.location().line, 3u);
    EXPECT_EQ(e.location().column, 10u);
    // The what() text is human-readable and cites line:col.
    EXPECT_NE(std::string(e.what()).find("3:10"), std::string::npos);
    // The snippet shows the offending source line with a caret.
    EXPECT_NE(e.snippet().find("<joint"), std::string::npos);
    EXPECT_NE(e.snippet().find('^'), std::string::npos);
}

TEST(Xml, MismatchedTagErrorPointsAtCloseTag)
{
    const XmlError e = expect_xml_error([] {
        parse_xml("<a>\n  <b>\n  </c>\n</a>");
    });
    EXPECT_EQ(e.code(), ParseErrorCode::kXmlMismatchedTag);
    EXPECT_EQ(e.location().line, 3u);
}

TEST(Xml, RejectsDuplicateAttributes)
{
    const XmlError e = expect_xml_error([] {
        parse_xml("<a x=\"1\" x=\"2\"/>");
    });
    EXPECT_EQ(e.code(), ParseErrorCode::kXmlDuplicateAttribute);
    // Last-wins silent acceptance would have kept x="2"; we must reject.
}

TEST(Xml, SkipsDoctypeWithInternalSubset)
{
    // skip_past(">") used to stop at the first '>' inside the bracketed
    // subset, leaving the parser mid-DTD.
    auto root = parse_xml(
        "<!DOCTYPE robot [\n"
        "  <!ENTITY foo \"bar\">\n"
        "  <!ELEMENT robot ANY>\n"
        "]>\n"
        "<robot name=\"r\"><link name=\"a\"/></robot>");
    EXPECT_EQ(root->name, "robot");
    ASSERT_EQ(root->children.size(), 1u);
}

TEST(Xml, RejectsUnterminatedDoctype)
{
    const XmlError e = expect_xml_error([] {
        parse_xml("<!DOCTYPE robot [ <!ENTITY x \"y\"> <robot/>");
    });
    EXPECT_EQ(e.code(), ParseErrorCode::kXmlUnterminated);
}

TEST(Xml, ParsesCdataSections)
{
    auto root = parse_xml("<a><![CDATA[x < y & z]]></a>");
    EXPECT_EQ(root->text, "x < y & z");
    // CDATA in attributes-adjacent text mixes with regular decoded text.
    auto mixed = parse_xml("<a>pre &amp; <![CDATA[<raw>]]> post</a>");
    EXPECT_EQ(mixed->text, "pre & <raw> post");
}

TEST(Xml, RejectsUnterminatedCdata)
{
    const XmlError e = expect_xml_error([] {
        parse_xml("<a><![CDATA[never closed</a>");
    });
    EXPECT_EQ(e.code(), ParseErrorCode::kXmlUnterminated);
}

TEST(Xml, DecodesNumericCharacterReferences)
{
    auto root = parse_xml("<a name=\"&#65;&#x42;\"/>");
    EXPECT_EQ(root->attribute("name"), "AB");
}

TEST(Xml, RejectsMalformedCharacterReferences)
{
    EXPECT_EQ(expect_xml_error([] { parse_xml("<a b=\"&#xFFFFFFFFF;\"/>"); })
                  .code(),
              ParseErrorCode::kXmlBadEntity);
    EXPECT_EQ(expect_xml_error([] { parse_xml("<a b=\"&#0;\"/>"); }).code(),
              ParseErrorCode::kXmlBadEntity);
    EXPECT_EQ(expect_xml_error([] { parse_xml("<a b=\"&#;\"/>"); }).code(),
              ParseErrorCode::kXmlBadEntity);
    EXPECT_EQ(expect_xml_error([] { parse_xml("<a>&verylongentityname;</a>"); })
                  .code(),
              ParseErrorCode::kXmlBadEntity);
}

TEST(Xml, RejectsPathologicalNestingDepth)
{
    // Stack-overflow guard: 5000 nested elements must be a typed error,
    // not a crash.
    std::string deep = "<r>";
    for (int i = 0; i < 5000; ++i)
        deep += "<d>";
    const XmlError e = expect_xml_error([&] { parse_xml(deep); });
    EXPECT_EQ(e.code(), ParseErrorCode::kXmlTooDeep);
}

TEST(Xml, FileErrorsAreTypedNotBareRuntimeError)
{
    // parse_xml_file used to throw std::runtime_error, invisible to
    // callers catching the documented XmlError type.
    const XmlError e = expect_xml_error([] {
        parse_xml_file("/nonexistent/path/robot.xml");
    });
    EXPECT_EQ(e.code(), ParseErrorCode::kIoError);
}

TEST(Xml, ElementsRecordTheirSourceLocation)
{
    auto root = parse_xml("<robot>\n  <link name=\"a\"/>\n</robot>");
    EXPECT_EQ(root->location.line, 1u);
    ASSERT_EQ(root->children.size(), 1u);
    EXPECT_EQ(root->children[0]->location.line, 2u);
    EXPECT_EQ(root->children[0]->location.column, 3u);
}

TEST(Xml, RejectsUnterminatedInput)
{
    EXPECT_THROW(parse_xml("<a><b/>"), XmlError);
    EXPECT_THROW(parse_xml("<a b=\"unclosed/>"), XmlError);
}

TEST(Xml, RejectsTrailingContent)
{
    EXPECT_THROW(parse_xml("<a/><b/>"), XmlError);
}

TEST(Xml, ChildrenNamedFiltersCorrectly)
{
    auto root = parse_xml("<r><x/><y/><x/></r>");
    EXPECT_EQ(root->children_named("x").size(), 2u);
    EXPECT_EQ(root->children_named("y").size(), 1u);
    EXPECT_EQ(root->children_named("z").size(), 0u);
}

// --------------------------------------------------------------- model ----

RobotModel
two_limb_model()
{
    // Base with two limbs: a 2-link arm and a 1-link head, declared out of
    // order to exercise preorder canonicalization.
    RobotModelBuilder b("toy");
    const JointModel rz(JointType::kRevolute, Vec3::unit_z());
    const SpatialInertia inertia = SpatialInertia::from_mass_com_inertia(
        1.0, {0.0, 0.0, 0.1}, spatial::Mat3::identity() * 0.01);
    b.add_link("arm2", "arm1", rz, SpatialTransform(), inertia);
    b.add_link("head", "", rz, SpatialTransform(), inertia);
    b.add_link("arm1", "", rz, SpatialTransform(), inertia);
    return b.finalize();
}

TEST(RobotModel, PreorderCanonicalization)
{
    const RobotModel m = two_limb_model();
    ASSERT_EQ(m.num_links(), 3u);
    // Declaration order of roots is preserved (head then arm1), and arm2
    // follows its parent immediately.
    EXPECT_EQ(m.link(0).name, "head");
    EXPECT_EQ(m.link(1).name, "arm1");
    EXPECT_EQ(m.link(2).name, "arm2");
    EXPECT_EQ(m.parent(2), 1);
    EXPECT_EQ(m.parent(1), kBaseParent);
    ASSERT_EQ(m.base_children().size(), 2u);
}

TEST(RobotModel, RejectsDuplicateNames)
{
    RobotModelBuilder b("dup");
    const JointModel rz(JointType::kRevolute, Vec3::unit_z());
    b.add_link("a", "", rz, SpatialTransform(), SpatialInertia());
    EXPECT_THROW(
        b.add_link("a", "", rz, SpatialTransform(), SpatialInertia()),
        std::invalid_argument);
}

TEST(RobotModel, RejectsUnknownParent)
{
    RobotModelBuilder b("orphan");
    const JointModel rz(JointType::kRevolute, Vec3::unit_z());
    b.add_link("a", "ghost", rz, SpatialTransform(), SpatialInertia());
    EXPECT_THROW(b.finalize(), std::invalid_argument);
}

TEST(RobotModel, RejectsCycles)
{
    RobotModelBuilder b("cycle");
    const JointModel rz(JointType::kRevolute, Vec3::unit_z());
    b.add_link("a", "b", rz, SpatialTransform(), SpatialInertia());
    b.add_link("b", "a", rz, SpatialTransform(), SpatialInertia());
    EXPECT_THROW(b.finalize(), std::invalid_argument);
}

TEST(RobotModel, RejectsFixedJointsOnMovingLinks)
{
    RobotModelBuilder b("fixed");
    b.add_link("a", "", JointModel(), SpatialTransform(), SpatialInertia());
    EXPECT_THROW(b.finalize(), std::invalid_argument);
}

TEST(RobotModel, FindLinkByName)
{
    const RobotModel m = two_limb_model();
    EXPECT_EQ(m.find_link("arm2"), 2);
    EXPECT_EQ(m.find_link("nope"), -1);
}

// -------------------------------------------------------------- info ----

TEST(TopologyInfo, DepthsSubtreesAndAncestry)
{
    const RobotModel m = two_limb_model();
    const TopologyInfo t(m);
    EXPECT_EQ(t.depth(0), 1u);
    EXPECT_EQ(t.depth(2), 2u);
    EXPECT_EQ(t.subtree_size(1), 2u);
    EXPECT_TRUE(t.is_ancestor_or_self(1, 2));
    EXPECT_FALSE(t.is_ancestor_or_self(2, 1));
    EXPECT_FALSE(t.is_ancestor_or_self(0, 2));
    EXPECT_TRUE(t.is_leaf(0));
    EXPECT_FALSE(t.is_leaf(1));
    ASSERT_EQ(t.limb_spans().size(), 2u);
    EXPECT_EQ(t.limb_spans()[1], (std::pair<std::size_t, std::size_t>{1, 3}));
}

TEST(TopologyInfo, IsAncestorMatchesParentChainBruteForce)
{
    for (RobotId id : all_robots()) {
        const RobotModel m = build_robot(id);
        const TopologyInfo t(m);
        const std::size_t n = m.num_links();
        for (std::size_t a = 0; a < n; ++a) {
            for (std::size_t b = 0; b < n; ++b) {
                bool expected = false;
                int cur = static_cast<int>(b);
                while (cur != kBaseParent) {
                    if (cur == static_cast<int>(a)) {
                        expected = true;
                        break;
                    }
                    cur = m.parent(cur);
                }
                EXPECT_EQ(t.is_ancestor_or_self(a, b), expected)
                    << robot_name(id) << " a=" << a << " b=" << b;
            }
        }
    }
}

TEST(TopologyInfo, RootPathEndsAtSelfAndStartsAtLimbRoot)
{
    const RobotModel m = build_robot(RobotId::kBaxter);
    const TopologyInfo t(m);
    for (std::size_t i = 0; i < m.num_links(); ++i) {
        const auto path = t.root_path(i);
        ASSERT_FALSE(path.empty());
        EXPECT_EQ(path.back(), i);
        EXPECT_EQ(m.parent(path.front()), kBaseParent);
        EXPECT_EQ(path.size(), t.depth(i));
    }
}

/** Expected Table 3 values (see DESIGN.md reconstruction notes). */
struct Table3Row
{
    RobotId id;
    std::size_t total_links;
    std::size_t max_leaf_depth;
    double avg_leaf_depth;
    std::size_t max_descendants;
    double leaf_depth_stdev;
};

class Table3Metrics : public ::testing::TestWithParam<Table3Row>
{
};

TEST_P(Table3Metrics, MatchesPaper)
{
    const Table3Row row = GetParam();
    const RobotModel m = build_robot(row.id);
    const TopologyMetrics got = TopologyInfo(m).metrics();
    EXPECT_EQ(got.total_links, row.total_links);
    EXPECT_EQ(got.max_leaf_depth, row.max_leaf_depth);
    EXPECT_NEAR(got.avg_leaf_depth, row.avg_leaf_depth, 1e-9);
    EXPECT_EQ(got.max_descendants, row.max_descendants);
    EXPECT_NEAR(got.leaf_depth_stdev, row.leaf_depth_stdev, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    AllRobots, Table3Metrics,
    ::testing::Values(
        Table3Row{RobotId::kIiwa, 7, 7, 7.0, 7, 0.0},
        Table3Row{RobotId::kHyq, 12, 3, 3.0, 3, 0.0},
        // Baxter stdev: population stdev of {1, 7, 7} = 2.828 (the paper
        // prints 2.3; see DESIGN.md).
        Table3Row{RobotId::kBaxter, 15, 7, 5.0, 7, 2.8284},
        Table3Row{RobotId::kJaco2, 12, 9, 9.0, 12, 0.0},
        Table3Row{RobotId::kJaco3, 15, 9, 9.0, 15, 0.0},
        Table3Row{RobotId::kHyqWithArm, 19, 7, 3.8, 7, 1.6}),
    [](const auto &gen_info) {
        std::string name = robot_name(gen_info.param.id);
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name + "_" + std::to_string(gen_info.param.total_links);
    });

TEST(TopologyInfo, MassMatrixSparsityMatchesPaper)
{
    // Paper Sec. 5.2: iiwa fully dense, HyQ 75% sparse, Baxter 56% sparse
    // (99 nonzeros of 225).
    const RobotModel iiwa = build_robot(RobotId::kIiwa);
    EXPECT_NEAR(TopologyInfo(iiwa).mass_matrix_sparsity(), 0.0, 1e-12);
    const RobotModel hyq = build_robot(RobotId::kHyq);
    EXPECT_NEAR(TopologyInfo(hyq).mass_matrix_sparsity(), 0.75, 1e-12);
    const RobotModel baxter_model = build_robot(RobotId::kBaxter);
    const TopologyInfo baxter(baxter_model);
    EXPECT_NEAR(baxter.mass_matrix_sparsity(), 1.0 - 99.0 / 225.0, 1e-12);
}

TEST(TopologyInfo, MaskAgreesWithNumericalMassMatrix)
{
    for (RobotId id : all_robots()) {
        const RobotModel m = build_robot(id);
        const TopologyInfo t(m);
        const auto mask = t.mass_matrix_mask();
        const auto state = dynamics::random_state(m, 17);
        const linalg::Matrix h = dynamics::crba(m, state.q);
        for (std::size_t i = 0; i < m.num_links(); ++i) {
            for (std::size_t j = 0; j < m.num_links(); ++j) {
                if (!mask[i][j]) {
                    EXPECT_NEAR(h(i, j), 0.0, 1e-12)
                        << robot_name(id) << " (" << i << "," << j << ")";
                }
            }
        }
    }
}

TEST(TopologyInfo, BranchLinks)
{
    // Jaco-3 branches at arm_link6; HyQ and iiwa have no in-tree branches.
    const RobotModel jaco = build_robot(RobotId::kJaco3);
    const TopologyInfo tj(jaco);
    ASSERT_EQ(tj.branch_links().size(), 1u);
    EXPECT_EQ(jaco.link(tj.branch_links()[0]).name, "arm_link6");
    const RobotModel iiwa = build_robot(RobotId::kIiwa);
    EXPECT_TRUE(TopologyInfo(iiwa).branch_links().empty());
    const RobotModel hyq = build_robot(RobotId::kHyq);
    EXPECT_TRUE(TopologyInfo(hyq).branch_links().empty());
}

// --------------------------------------------------------------- urdf ----

TEST(Urdf, RoundTripPreservesTopologyAndDynamics)
{
    for (RobotId id : all_robots()) {
        const RobotModel direct = build_robot(id);
        const RobotModel parsed = parse_urdf(robot_urdf(id));
        ASSERT_EQ(parsed.num_links(), direct.num_links()) << robot_name(id);
        for (std::size_t i = 0; i < direct.num_links(); ++i) {
            EXPECT_EQ(parsed.link(i).name, direct.link(i).name);
            EXPECT_EQ(parsed.parent(i), direct.parent(i));
        }
        // Dynamics-level equivalence: identical mass matrices at random q.
        const auto state = dynamics::random_state(direct, 23);
        const linalg::Matrix hd = dynamics::crba(direct, state.q);
        const linalg::Matrix hp = dynamics::crba(parsed, state.q);
        EXPECT_LT(linalg::max_abs_diff(hd, hp), 1e-10) << robot_name(id);
    }
}

TEST(Urdf, FoldsFixedJoints)
{
    const char *urdf = R"(
      <robot name="folding">
        <link name="base"/>
        <link name="arm"><inertial>
          <origin xyz="0 0 0.1"/><mass value="2"/>
          <inertia ixx="0.1" iyy="0.1" izz="0.05"/></inertial></link>
        <link name="tool"><inertial>
          <origin xyz="0 0 0.05"/><mass value="0.5"/>
          <inertia ixx="0.01" iyy="0.01" izz="0.01"/></inertial></link>
        <link name="tip"><inertial>
          <origin xyz="0 0 0.02"/><mass value="0.2"/>
          <inertia ixx="0.001" iyy="0.001" izz="0.001"/></inertial></link>
        <joint name="j1" type="revolute">
          <parent link="base"/><child link="arm"/>
          <origin xyz="0 0 0.2"/><axis xyz="0 0 1"/></joint>
        <joint name="jf" type="fixed">
          <parent link="arm"/><child link="tool"/>
          <origin xyz="0 0 0.3"/></joint>
        <joint name="j2" type="revolute">
          <parent link="tool"/><child link="tip"/>
          <origin xyz="0 0 0.1"/><axis xyz="0 1 0"/></joint>
      </robot>)";
    const RobotModel m = parse_urdf(urdf);
    ASSERT_EQ(m.num_links(), 2u);
    EXPECT_EQ(m.link(0).name, "arm");
    EXPECT_EQ(m.link(1).name, "tip");
    EXPECT_EQ(m.parent(1), 0);
    // Folded mass: arm absorbs the tool.
    EXPECT_NEAR(m.link(0).inertia.mass(), 2.5, 1e-12);
    EXPECT_NEAR(m.link(1).inertia.mass(), 0.2, 1e-12);
    // The tip joint origin accumulates the fixed offset: 0.3 + 0.1 from arm.
    EXPECT_NEAR(m.link(1).x_tree.translation_vector().z, 0.4, 1e-12);
}

TEST(Urdf, RejectsStructuralErrors)
{
    EXPECT_THROW(parse_urdf("<robot name=\"x\"/>"), UrdfError);
    EXPECT_THROW(parse_urdf("<notrobot/>"), UrdfError);
    // Unknown parent link.
    EXPECT_THROW(parse_urdf(R"(
      <robot name="x"><link name="a"/><link name="b"/>
        <joint name="j" type="revolute">
          <parent link="ghost"/><child link="b"/><axis xyz="0 0 1"/>
        </joint></robot>)"),
                 UrdfError);
    // Two roots (disconnected link).
    EXPECT_THROW(parse_urdf(R"(
      <robot name="x"><link name="a"/><link name="b"/></robot>)"),
                 UrdfError);
    // Duplicate child.
    EXPECT_THROW(parse_urdf(R"(
      <robot name="x"><link name="a"/><link name="b"/>
        <joint name="j1" type="revolute">
          <parent link="a"/><child link="b"/><axis xyz="0 0 1"/></joint>
        <joint name="j2" type="revolute">
          <parent link="a"/><child link="b"/><axis xyz="0 0 1"/></joint>
      </robot>)"),
                 UrdfError);
}

TEST(Urdf, RpyRotationsAffectKinematicsCorrectly)
{
    // A joint origin rotated 90 deg about z turns the child's x axis into
    // the parent's y axis; verify through the parsed model's dynamics.
    const char *urdf = R"(
      <robot name="rpy">
        <link name="base"/>
        <link name="a"><inertial>
          <origin xyz="0.2 0 0"/><mass value="1"/>
          <inertia ixx="0.01" iyy="0.01" izz="0.01"/></inertial></link>
        <joint name="j1" type="revolute">
          <parent link="base"/><child link="a"/>
          <origin xyz="0 0 0.1" rpy="0 0 1.5707963267948966"/>
          <axis xyz="0 0 1"/></joint>
      </robot>)";
    const RobotModel m = parse_urdf(urdf);
    ASSERT_EQ(m.num_links(), 1u);
    // At q=0 the link's COM (0.2 along child x) lies along parent +y.
    const linalg::Vector q(1);
    const auto fk_x = m.link(0).x_tree.rotation_matrix().transpose_mul(
        {0.2, 0.0, 0.0});
    EXPECT_NEAR(fk_x.x, 0.0, 1e-9);
    EXPECT_NEAR(fk_x.y, 0.2, 1e-9);
    // Gravity torque about the joint's z axis is zero regardless (moment
    // arm parallel to gravity's lever), but the mass matrix must see the
    // 0.2 m offset: M(0,0) = izz + m r^2.
    const linalg::Matrix h = dynamics::crba(m, q);
    EXPECT_NEAR(h(0, 0), 0.01 + 1.0 * 0.2 * 0.2, 1e-9);
}

TEST(Urdf, InertialRpyRotatesTheTensor)
{
    // An inertia diag(1,2,3) in a frame rotated 90 deg about x must read
    // diag(1,3,2) in link axes.
    const char *urdf = R"(
      <robot name="tensor">
        <link name="base"/>
        <link name="a"><inertial>
          <origin xyz="0 0 0" rpy="1.5707963267948966 0 0"/>
          <mass value="2"/>
          <inertia ixx="1" iyy="2" izz="3"/></inertial></link>
        <joint name="j1" type="revolute">
          <parent link="base"/><child link="a"/>
          <axis xyz="0 0 1"/></joint>
      </robot>)";
    const RobotModel m = parse_urdf(urdf);
    const auto &ibar = m.link(0).inertia.ibar();
    EXPECT_NEAR(ibar(0, 0), 1.0, 1e-9);
    EXPECT_NEAR(ibar(1, 1), 3.0, 1e-9);
    EXPECT_NEAR(ibar(2, 2), 2.0, 1e-9);
}

TEST(Urdf, WritesAndParsesFiles)
{
    const std::string dir = ::testing::TempDir();
    const auto paths = write_urdf_files(dir);
    ASSERT_EQ(paths.size(),
              all_robots().size() + extended_robots().size());
    const RobotModel m = parse_urdf_file(paths[0]);
    EXPECT_EQ(m.num_links(), 7u); // iiwa is first
}

// ---------------------------------------------- URDF hardening (PR 3) ----

/** Runs @p fn expecting a UrdfError; returns it for detailed assertions. */
template <typename Fn>
UrdfError
expect_urdf_error(Fn &&fn)
{
    try {
        fn();
    } catch (const UrdfError &e) {
        return e;
    }
    ADD_FAILURE() << "expected UrdfError";
    return UrdfError("");
}

/** Minimal two-link robot with a parameterizable joint/inertial payload. */
std::string
mini_urdf(const std::string &inertial, const std::string &joint_extra)
{
    return "<robot name=\"mini\">\n"
           "  <link name=\"base\"/>\n"
           "  <link name=\"a\">" + inertial + "</link>\n"
           "  <joint name=\"j\" type=\"revolute\">\n"
           "    <parent link=\"base\"/><child link=\"a\"/>\n"
           "    " + joint_extra + "\n"
           "  </joint>\n"
           "</robot>";
}

TEST(Urdf, RejectsTrailingGarbageInVectors)
{
    // "1 2 3 x": the old extra-token read (is >> extra) failed silently on
    // non-numeric trailing tokens, accepting the vector.
    const UrdfError e = expect_urdf_error([] {
        parse_urdf(mini_urdf("", "<origin xyz=\"1 2 3 x\"/>"));
    });
    EXPECT_EQ(e.code(), ParseErrorCode::kUrdfBadVector);
    // Four numeric components are still rejected too.
    EXPECT_EQ(expect_urdf_error([] {
                  parse_urdf(mini_urdf("", "<origin xyz=\"1 2 3 4\"/>"));
              }).code(),
              ParseErrorCode::kUrdfBadVector);
}

TEST(Urdf, RejectsNonFiniteVectorComponents)
{
    for (const char *bad : {"nan 0 0", "0 inf 0", "0 0 -inf", "1e999999 0 0"}) {
        EXPECT_EQ(expect_urdf_error([&] {
                      parse_urdf(mini_urdf(
                          "", "<origin xyz=\"" + std::string(bad) + "\"/>"));
                  }).code(),
                  ParseErrorCode::kUrdfBadVector)
            << bad;
    }
}

TEST(Urdf, RejectsNumericPrefixGarbageInAttributes)
{
    // std::stod("1.5abc") returns 1.5 and ignores the suffix; the checked
    // reader requires full-string consumption.
    const UrdfError e = expect_urdf_error([] {
        parse_urdf(mini_urdf("<inertial><mass value=\"1.5abc\"/>"
                             "<inertia ixx=\"0.1\" iyy=\"0.1\" izz=\"0.1\"/>"
                             "</inertial>",
                             "<axis xyz=\"0 0 1\"/>"));
    });
    EXPECT_EQ(e.code(), ParseErrorCode::kUrdfBadNumber);
    // The message names the offending attribute for operators.
    EXPECT_NE(std::string(e.what()).find("value"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1.5abc"), std::string::npos);
}

TEST(Urdf, NumericErrorsAreTypedNotLeakedStdExceptions)
{
    // Bare std::stod leaked std::invalid_argument on "x" and
    // std::out_of_range on "1e999999"; both must now be UrdfError.
    EXPECT_EQ(expect_urdf_error([] {
                  parse_urdf(mini_urdf(
                      "<inertial><mass value=\"x\"/>"
                      "<inertia ixx=\"0.1\" iyy=\"0.1\" izz=\"0.1\"/>"
                      "</inertial>",
                      ""));
              }).code(),
              ParseErrorCode::kUrdfBadNumber);
    EXPECT_EQ(expect_urdf_error([] {
                  parse_urdf(mini_urdf(
                      "<inertial><mass value=\"1e999999\"/>"
                      "<inertia ixx=\"0.1\" iyy=\"0.1\" izz=\"0.1\"/>"
                      "</inertial>",
                      ""));
              }).code(),
              ParseErrorCode::kUrdfBadNumber);
    // NaN masses are data poison for the whole dynamics pipeline.
    EXPECT_EQ(expect_urdf_error([] {
                  parse_urdf(mini_urdf(
                      "<inertial><mass value=\"nan\"/>"
                      "<inertia ixx=\"0.1\" iyy=\"0.1\" izz=\"0.1\"/>"
                      "</inertial>",
                      ""));
              }).code(),
              ParseErrorCode::kUrdfBadNumber);
}

TEST(Urdf, UnsupportedJointTypeIsTypedError)
{
    // joint_type_from_string threw std::invalid_argument straight through
    // parse_urdf.
    const UrdfError e = expect_urdf_error([] {
        parse_urdf("<robot name=\"x\"><link name=\"a\"/><link name=\"b\"/>"
                   "<joint name=\"j\" type=\"floating\">"
                   "<parent link=\"a\"/><child link=\"b\"/></joint>"
                   "</robot>");
    });
    EXPECT_EQ(e.code(), ParseErrorCode::kUrdfBadJointType);
}

TEST(Urdf, FileErrorsAreTypedNotBareRuntimeError)
{
    const UrdfError e = expect_urdf_error([] {
        parse_urdf_file("/nonexistent/path/robot.urdf");
    });
    EXPECT_EQ(e.code(), ParseErrorCode::kIoError);
}

TEST(Urdf, ErrorsCarryElementLocations)
{
    const UrdfError e = expect_urdf_error([] {
        parse_urdf("<robot name=\"x\">\n"
                   "  <link name=\"base\"/>\n"
                   "  <link name=\"a\">\n"
                   "    <inertial>\n"
                   "      <mass value=\"oops\"/>\n"
                   "      <inertia ixx=\"1\" iyy=\"1\" izz=\"1\"/>\n"
                   "    </inertial>\n"
                   "  </link>\n"
                   "  <joint name=\"j\" type=\"revolute\">\n"
                   "    <parent link=\"base\"/><child link=\"a\"/>\n"
                   "  </joint>\n"
                   "</robot>");
    });
    EXPECT_EQ(e.code(), ParseErrorCode::kUrdfBadNumber);
    EXPECT_EQ(e.location().line, 5u); // the <mass> element's line
    EXPECT_NE(std::string(e.what()).find("5:"), std::string::npos);
}

TEST(Urdf, RejectsDuplicateJointNames)
{
    const UrdfError e = expect_urdf_error([] {
        parse_urdf("<robot name=\"x\">"
                   "<link name=\"a\"/><link name=\"b\"/><link name=\"c\"/>"
                   "<joint name=\"j\" type=\"revolute\">"
                   "<parent link=\"a\"/><child link=\"b\"/>"
                   "<axis xyz=\"0 0 1\"/></joint>"
                   "<joint name=\"j\" type=\"revolute\">"
                   "<parent link=\"b\"/><child link=\"c\"/>"
                   "<axis xyz=\"0 0 1\"/></joint>"
                   "</robot>");
    });
    EXPECT_EQ(e.code(), ParseErrorCode::kUrdfDuplicateName);
}

// ------------------------------------------- report-mode parse (PR 3) ----

TEST(UrdfChecked, CollectsAllDiagnosticsInOnePass)
{
    // Four independent errors; strict mode would stop at the first.
    const UrdfParseResult result = parse_urdf_checked(
        "<robot name=\"multi\">\n"
        "  <link name=\"base\"/>\n"
        "  <link name=\"a\">\n"
        "    <inertial>\n"
        "      <mass value=\"2.5kg\"/>\n"
        "      <inertia ixx=\"0.1\" iyy=\"0.1\" izz=\"nan\"/>\n"
        "    </inertial>\n"
        "  </link>\n"
        "  <link name=\"a\"/>\n"
        "  <joint name=\"j1\" type=\"revolute\">\n"
        "    <parent link=\"base\"/><child link=\"a\"/>\n"
        "    <origin xyz=\"1 2 3 x\"/>\n"
        "    <axis xyz=\"0 0 1\"/>\n"
        "  </joint>\n"
        "  <joint name=\"j2\" type=\"twisty\">\n"
        "    <parent link=\"base\"/><child link=\"ghost\"/>\n"
        "  </joint>\n"
        "</robot>");
    EXPECT_FALSE(result.ok());
    EXPECT_FALSE(result.model.has_value());
    EXPECT_GE(result.report.error_count(), 4u);
    EXPECT_TRUE(result.report.has(ParseErrorCode::kUrdfBadNumber));
    EXPECT_TRUE(result.report.has(ParseErrorCode::kUrdfDuplicateName));
    EXPECT_TRUE(result.report.has(ParseErrorCode::kUrdfBadVector));
    EXPECT_TRUE(result.report.has(ParseErrorCode::kUrdfBadJointType));
    // Diagnostics carry line:col positions.
    bool located = false;
    for (const auto &d : result.report.diagnostics()) {
        if (d.code == ParseErrorCode::kUrdfBadNumber &&
            d.location.line == 5)
            located = true;
    }
    EXPECT_TRUE(located) << result.report.to_string();
}

TEST(UrdfChecked, NeverThrowsOnXmlGarbage)
{
    const UrdfParseResult result = parse_urdf_checked("<robot><link");
    EXPECT_FALSE(result.ok());
    ASSERT_EQ(result.report.error_count(), 1u);
    EXPECT_EQ(result.report.diagnostics()[0].code,
              ParseErrorCode::kXmlMalformedTag);
}

TEST(UrdfChecked, WarnsOnZeroMassWithNonzeroInertia)
{
    const UrdfParseResult result = parse_urdf_checked(mini_urdf(
        "<inertial><mass value=\"0\"/>"
        "<inertia ixx=\"0.4\" iyy=\"0.4\" izz=\"0.4\"/></inertial>",
        "<axis xyz=\"0 0 1\"/>"));
    EXPECT_TRUE(result.ok()); // warnings never block the model
    EXPECT_TRUE(result.report.has(ParseErrorCode::kUrdfZeroMassInertia));
}

TEST(UrdfChecked, WarnsOnNonPsdAndTriangleViolatingInertia)
{
    const UrdfParseResult npsd = parse_urdf_checked(mini_urdf(
        "<inertial><mass value=\"1\"/>"
        "<inertia ixx=\"-0.1\" iyy=\"0.1\" izz=\"0.1\"/></inertial>",
        "<axis xyz=\"0 0 1\"/>"));
    EXPECT_TRUE(npsd.ok());
    EXPECT_TRUE(npsd.report.has(ParseErrorCode::kUrdfNonPsdInertia));

    // diag(0.1, 0.1, 0.9) is PSD but physically impossible for any rigid
    // body: ixx + iyy >= izz fails.
    const UrdfParseResult tri = parse_urdf_checked(mini_urdf(
        "<inertial><mass value=\"1\"/>"
        "<inertia ixx=\"0.1\" iyy=\"0.1\" izz=\"0.9\"/></inertial>",
        "<axis xyz=\"0 0 1\"/>"));
    EXPECT_TRUE(tri.ok());
    EXPECT_TRUE(tri.report.has(ParseErrorCode::kUrdfTriangleInequality));
    EXPECT_FALSE(tri.report.has(ParseErrorCode::kUrdfNonPsdInertia));
}

TEST(UrdfChecked, WarnsOnNonNormalizedJointAxis)
{
    const UrdfParseResult result =
        parse_urdf_checked(mini_urdf("", "<axis xyz=\"0 0 2\"/>"));
    EXPECT_TRUE(result.ok());
    EXPECT_TRUE(result.report.has(ParseErrorCode::kUrdfNonUnitAxis));
    // The model still normalizes the axis (JointModel invariant).
    EXPECT_NEAR(result.model->link(0).joint.axis().z, 1.0, 1e-12);
}

TEST(UrdfChecked, WarnsOnIgnoredElements)
{
    const UrdfParseResult result = parse_urdf_checked(
        "<robot name=\"extras\">"
        "<gazebo/>"
        "<link name=\"base\"/>"
        "<link name=\"a\"><mystery_payload/></link>"
        "<joint name=\"j\" type=\"revolute\">"
        "<parent link=\"base\"/><child link=\"a\"/>"
        "<axis xyz=\"0 0 1\"/>"
        "<limit lower=\"-1\" upper=\"1\"/></joint>"
        "</robot>");
    EXPECT_TRUE(result.ok());
    std::size_t ignored = 0;
    for (const auto &d : result.report.diagnostics())
        if (d.code == ParseErrorCode::kUrdfIgnoredElement)
            ++ignored;
    // <gazebo> and <mystery_payload> are outside the consumed schema;
    // <limit> is a known joint child the pipeline deliberately skips.
    EXPECT_EQ(ignored, 2u) << result.report.to_string();
}

TEST(UrdfChecked, MatchesStrictModeOnTheWholeRobotLibrary)
{
    for (const auto &seed : all_robot_urdfs()) {
        const RobotModel strict = parse_urdf(seed.text);
        const UrdfParseResult checked = parse_urdf_checked(seed.text);
        ASSERT_TRUE(checked.ok()) << seed.name << "\n"
                                  << checked.report.to_string();
        EXPECT_EQ(checked.report.error_count(), 0u) << seed.name;
        ASSERT_EQ(checked.model->num_links(), strict.num_links());
        for (std::size_t i = 0; i < strict.num_links(); ++i) {
            EXPECT_EQ(checked.model->link(i).name, strict.link(i).name);
            EXPECT_EQ(checked.model->parent(i), strict.parent(i));
            // Bit-identical numerics between the two modes.
            EXPECT_EQ(checked.model->link(i).inertia.mass(),
                      strict.link(i).inertia.mass());
        }
    }
}

TEST(UrdfChecked, FileVariantReportsIoErrors)
{
    const UrdfParseResult result =
        parse_urdf_file_checked("/nonexistent/robot.urdf");
    EXPECT_FALSE(result.ok());
    ASSERT_EQ(result.report.error_count(), 1u);
    EXPECT_EQ(result.report.diagnostics()[0].code,
              ParseErrorCode::kIoError);
}

// -------------------------------------------- adversarial corpus (PR 3) ----

TEST(UrdfCorpus, EveryFileYieldsModelOrTypedError)
{
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::path(ROBOSHAPE_SOURCE_DIR) / "data" / "corpus";
    ASSERT_TRUE(fs::exists(dir)) << dir;
    std::size_t files = 0, ok_files = 0;
    for (const auto &entry : fs::directory_iterator(dir)) {
        if (!entry.is_regular_file() ||
            entry.path().extension() != ".urdf")
            continue;
        ++files;
        const std::string name = entry.path().filename().string();
        std::ifstream in(entry.path(), std::ios::binary);
        std::ostringstream ss;
        ss << in.rdbuf();
        const std::string text = ss.str();

        // Strict mode: model or typed error, nothing else.
        bool strict_ok = false;
        try {
            parse_urdf(text);
            strict_ok = true;
        } catch (const UrdfError &) {
        } catch (const XmlError &) {
        } catch (const std::exception &e) {
            ADD_FAILURE() << name << " leaked non-parser exception: "
                          << e.what();
        }
        if (strict_ok)
            ++ok_files;

        // Checked mode: never throws, and agrees with strict mode.
        const UrdfParseResult checked = parse_urdf_checked(text);
        EXPECT_EQ(checked.ok(), strict_ok)
            << name << "\n" << checked.report.to_string();

        // Naming convention encodes the expected outcome.
        if (name.rfind("ok_", 0) == 0 || name.rfind("warn_", 0) == 0) {
            EXPECT_TRUE(strict_ok) << name << "\n"
                                   << checked.report.to_string();
        } else {
            EXPECT_FALSE(strict_ok) << name << " parsed unexpectedly";
        }
        if (name.rfind("warn_", 0) == 0) {
            EXPECT_GE(checked.report.warning_count(), 1u) << name;
        }
    }
    EXPECT_GE(files, 30u) << "corpus shrank below its committed size";
    EXPECT_GE(ok_files, 2u); // doctype/CDATA positives must stay present
}

TEST(RobotLibrary, NamesAndShippedSubset)
{
    EXPECT_STREQ(robot_name(RobotId::kHyqWithArm), "HyQ+arm");
    EXPECT_EQ(shipped_robots().size(), 3u);
    EXPECT_EQ(all_robots().size(), 6u);
    EXPECT_EQ(extended_robots().size(), 3u);
}

TEST(RobotLibrary, ExtendedFleetMetrics)
{
    // Bittle: 4 x 2-link legs.
    const RobotModel bittle = build_robot(RobotId::kBittle);
    const TopologyMetrics bm = TopologyInfo(bittle).metrics();
    EXPECT_EQ(bm.total_links, 8u);
    EXPECT_EQ(bm.max_leaf_depth, 2u);
    EXPECT_EQ(bm.max_descendants, 2u);
    EXPECT_EQ(bittle.base_children().size(), 4u);

    // Pepper: 3-link hip column carrying a 2-link head and two 5-link
    // arms — branch points below the base (off-diagonal mass coupling).
    const RobotModel pepper = build_robot(RobotId::kPepper);
    const TopologyInfo pt(pepper);
    const TopologyMetrics pm = pt.metrics();
    EXPECT_EQ(pm.total_links, 15u);
    EXPECT_EQ(pm.max_leaf_depth, 8u);
    EXPECT_EQ(pm.max_descendants, 15u);
    EXPECT_EQ(pt.branch_links().size(), 1u); // hip_link3
    EXPECT_LT(pt.mass_matrix_sparsity(), 0.5); // heavily coupled

    // Humanoid: 27 links over five limbs.
    const RobotModel humanoid = build_robot(RobotId::kHumanoid);
    const TopologyMetrics hm = TopologyInfo(humanoid).metrics();
    EXPECT_EQ(hm.total_links, 27u);
    EXPECT_EQ(hm.max_leaf_depth, 7u);
    EXPECT_NEAR(hm.avg_leaf_depth, (6 + 6 + 7 + 7 + 1) / 5.0, 1e-12);
    EXPECT_EQ(humanoid.base_children().size(), 5u);
}

TEST(RobotLibrary, ExtendedFleetRoundTripsThroughUrdf)
{
    for (RobotId id : extended_robots()) {
        const RobotModel direct = build_robot(id);
        const RobotModel parsed = parse_urdf(robot_urdf(id));
        ASSERT_EQ(parsed.num_links(), direct.num_links()) << robot_name(id);
        const auto state = dynamics::random_state(direct, 3);
        EXPECT_LT(linalg::max_abs_diff(dynamics::crba(direct, state.q),
                                       dynamics::crba(parsed, state.q)),
                  1e-10)
            << robot_name(id);
    }
}

} // namespace
} // namespace topology
} // namespace roboshape
