/**
 * @file
 * Tests for I/O payload accounting and the interconnect model, anchored to
 * the exact figures of paper Sec. 5.2.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "io/fault_injection.h"
#include "io/link_model.h"
#include "io/payload.h"
#include "topology/robot_library.h"
#include "topology/urdf_parser.h"
#include "topology/xml.h"

namespace roboshape {
namespace io {
namespace {

using topology::RobotId;
using topology::RobotModel;
using topology::TopologyInfo;
using topology::build_robot;

TEST(Payload, MatrixShareMatchesPaper)
{
    // Paper Sec. 5.2: matrices make up 84%, 90%, and 92% of total I/O bits
    // for iiwa, HyQ, and Baxter.
    EXPECT_NEAR(dense_payload(7).matrix_share(), 0.84, 0.005);
    EXPECT_NEAR(dense_payload(12).matrix_share(), 0.90, 0.005);
    EXPECT_NEAR(dense_payload(15).matrix_share(), 0.92, 0.005);
}

TEST(Payload, CompressionRatiosMatchPaper)
{
    // Paper Sec. 5.2: expected I/O reductions of 3.1x for HyQ and 2.1x for
    // Baxter; iiwa's dense mass matrix compresses nothing.
    const RobotModel hyq = build_robot(RobotId::kHyq);
    const TopologyInfo hyq_topo(hyq);
    EXPECT_NEAR(compression_ratio(hyq_topo), 3.1, 0.05);

    const RobotModel baxter = build_robot(RobotId::kBaxter);
    const TopologyInfo baxter_topo(baxter);
    EXPECT_NEAR(compression_ratio(baxter_topo), 2.1, 0.05);

    const RobotModel iiwa = build_robot(RobotId::kIiwa);
    const TopologyInfo iiwa_topo(iiwa);
    EXPECT_NEAR(compression_ratio(iiwa_topo), 1.0, 1e-12);
}

TEST(Payload, SparseNeverExceedsDense)
{
    for (RobotId id : topology::all_robots()) {
        const RobotModel m = build_robot(id);
        const TopologyInfo topo(m);
        EXPECT_LE(sparse_payload(topo).total(),
                  dense_payload(m.num_links()).total());
        EXPECT_EQ(sparse_payload(topo).vector_bits,
                  dense_payload(m.num_links()).vector_bits);
    }
}

TEST(Payload, DirectionalSplitSumsToTotal)
{
    for (RobotId id : topology::all_robots()) {
        const RobotModel m = build_robot(id);
        const TopologyInfo topo(m);
        const DirectionalPayload dense = dense_directional(m.num_links());
        EXPECT_EQ(dense.in_bits + dense.out_bits,
                  dense_payload(m.num_links()).total());
        const DirectionalPayload sparse = sparse_directional(topo);
        EXPECT_EQ(sparse.in_bits + sparse.out_bits,
                  sparse_payload(topo).total());
    }
}

TEST(Payload, DenseBitsFormula)
{
    // N = 7: vectors 4*7*32 = 896 bits, matrices 3*49*32 = 4704 bits.
    const PayloadBits p = dense_payload(7);
    EXPECT_EQ(p.vector_bits, 896);
    EXPECT_EQ(p.matrix_bits, 4704);
}

TEST(LinkModel, TransferTimeScalesWithPayload)
{
    const LinkModel &link = fpga_link_gen1();
    const double small = link.transfer_us(1000);
    const double large = link.transfer_us(100000);
    EXPECT_GT(large, small);
    // Fixed overhead dominates tiny transfers.
    EXPECT_NEAR(link.transfer_us(0), link.per_transfer_us, 1e-12);
}

TEST(LinkModel, Gen3IsRoughlyThreeTimesFaster)
{
    // Paper Sec. 5.2: PCIe Gen 3 is around 3x faster than the Gen-1-level
    // Connectal link.
    EXPECT_NEAR(pcie_gen3().gbit_per_s / fpga_link_gen1().gbit_per_s, 3.0,
                0.1);
}

TEST(LinkModel, RoundtripComposition)
{
    const LinkModel link{"test", 1.0, 2.0}; // 1 Gbit/s, 2 us setup
    // 4 steps x 1000 bits each way + 10 us compute:
    // in: 2 + 4 us; out: 2 + 4 us; total 22 us.
    EXPECT_NEAR(roundtrip_us(link, 1000, 1000, 4, 10.0), 22.0, 1e-9);
}

TEST(LinkModel, SparsePacketsShrinkRoundtrip)
{
    const RobotModel hyq = build_robot(RobotId::kHyq);
    const TopologyInfo topo(hyq);
    const DirectionalPayload dense = dense_directional(hyq.num_links());
    const DirectionalPayload sparse = sparse_directional(topo);
    const double dense_rt = roundtrip_us(fpga_link_gen1(), dense.in_bits,
                                         dense.out_bits, 4, 0.0);
    const double sparse_rt = roundtrip_us(fpga_link_gen1(), sparse.in_bits,
                                          sparse.out_bits, 4, 0.0);
    EXPECT_LT(sparse_rt, dense_rt);
}

// ------------------------------------------- fault injection (PR 3) ----

TEST(FaultInjection, MutationsAreDeterministic)
{
    const std::string seed_text = topology::robot_urdf(RobotId::kIiwa);
    for (std::uint64_t seed : {0ull, 1ull, 42ull, 0xDEADBEEFull}) {
        const MutationResult a = mutate_urdf(seed_text, seed);
        const MutationResult b = mutate_urdf(seed_text, seed);
        EXPECT_EQ(a.text, b.text) << "seed " << seed;
        EXPECT_EQ(a.applied, b.applied) << "seed " << seed;
    }
}

TEST(FaultInjection, DifferentSeedsProduceDifferentDocuments)
{
    const std::string seed_text = topology::robot_urdf(RobotId::kIiwa);
    std::set<std::string> outputs;
    for (std::uint64_t seed = 0; seed < 64; ++seed)
        outputs.insert(mutate_urdf(seed_text, seed).text);
    // A few collisions are fine; a constant mutator is not.
    EXPECT_GE(outputs.size(), 32u);
}

TEST(FaultInjection, AppliesAtLeastOneMutationAndNamesIt)
{
    const std::string seed_text = topology::robot_urdf(RobotId::kBittle);
    for (std::uint64_t seed = 0; seed < 32; ++seed) {
        const MutationResult m = mutate_urdf(seed_text, seed);
        ASSERT_FALSE(m.applied.empty()) << "seed " << seed;
        for (const MutationKind k : m.applied)
            EXPECT_STRNE(mutation_name(k), "unknown");
    }
}

TEST(FaultInjection, MiniFuzzHoldsTheParserInvariant)
{
    // A fast in-process sibling of tools/urdf_fuzz.cc: every mutated
    // document must yield a model or a typed parse error, and the
    // report-mode entry point must never throw.  The full 12k-iteration
    // sweep runs as the `urdf_fuzz` ctest.
    const std::string seed_text = topology::robot_urdf(RobotId::kIiwa);
    std::size_t models = 0, typed = 0;
    for (std::uint64_t seed = 0; seed < 800; ++seed) {
        const MutationResult m = mutate_urdf(seed_text, seed);
        bool strict_ok = false;
        try {
            topology::parse_urdf(m.text);
            strict_ok = true;
            ++models;
        } catch (const topology::UrdfError &) {
            ++typed;
        } catch (const topology::XmlError &) {
            ++typed;
        }
        // Any other exception escapes and fails the test.
        const topology::UrdfParseResult checked =
            topology::parse_urdf_checked(m.text);
        ASSERT_EQ(checked.ok(), strict_ok) << "seed " << seed;
    }
    EXPECT_EQ(models + typed, 800u);
    EXPECT_GE(typed, 1u); // the mutator must actually break documents
}

} // namespace
} // namespace io
} // namespace roboshape
