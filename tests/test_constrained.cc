/**
 * @file
 * Tests for contact-constrained forward dynamics (stance-leg pinning).
 */

#include <gtest/gtest.h>

#include "dynamics/aba.h"
#include "dynamics/constrained.h"
#include "dynamics/kinematics.h"
#include "dynamics/robot_state.h"
#include "linalg/factorization.h"
#include "topology/robot_library.h"
#include "topology/topology_info.h"

namespace roboshape {
namespace dynamics {
namespace {

using linalg::Matrix;
using linalg::Vector;
using topology::RobotId;
using topology::RobotModel;
using topology::TopologyInfo;

std::vector<Contact>
hyq_feet(const RobotModel &hyq)
{
    std::vector<Contact> contacts;
    for (const char *name : {"lf_kfe", "rf_kfe", "lh_kfe", "rh_kfe"}) {
        const int idx = hyq.find_link(name);
        EXPECT_GE(idx, 0);
        // The foot sits at the end of the 0.33 m shank.
        contacts.push_back({static_cast<std::size_t>(idx),
                            {0.0, 0.0, 0.33}});
    }
    return contacts;
}

TEST(Constrained, NoContactsReducesToFreeDynamics)
{
    const RobotModel m = topology::build_robot(RobotId::kIiwa);
    const TopologyInfo topo(m);
    const RobotState s = random_state(m, 3);
    const auto sol =
        constrained_forward_dynamics(m, topo, s.q, s.qd, s.tau, {});
    const Vector free = aba(m, s.q, s.qd, s.tau);
    EXPECT_LT(linalg::max_abs_diff(sol.qdd, free), 1e-7);
}

TEST(Constrained, StanceFeetStopAccelerating)
{
    const RobotModel hyq = topology::build_robot(RobotId::kHyq);
    const TopologyInfo topo(hyq);
    const RobotState s = random_state(hyq, 7);
    const auto contacts = hyq_feet(hyq);

    const auto sol = constrained_forward_dynamics(hyq, topo, s.q, s.qd,
                                                  s.tau, contacts);
    EXPECT_LT(sol.constraint_residual, 1e-6);
    EXPECT_LT(sol.kkt_residual, 1e-6);

    // The unconstrained solution violates the constraint badly.
    const Vector free = aba(hyq, s.q, s.qd, s.tau);
    const Matrix jac = contact_jacobian(hyq, s.q, contacts);
    const Vector bias = contact_bias(hyq, s.q, s.qd, contacts);
    const Vector free_violation = jac * free + bias;
    EXPECT_GT(free_violation.max_abs(), 1e-2);
}

TEST(Constrained, RestWithoutGravityNeedsNoForces)
{
    const RobotModel hyq = topology::build_robot(RobotId::kHyq);
    const TopologyInfo topo(hyq);
    const std::size_t n = hyq.num_links();
    const Vector q = random_state(hyq, 9).q;
    const Vector zero(n);
    const auto sol = constrained_forward_dynamics(
        hyq, topo, q, zero, zero, hyq_feet(hyq), spatial::Vec3::zero());
    EXPECT_NEAR(sol.qdd.max_abs(), 0.0, 1e-8);
    EXPECT_NEAR(sol.forces.max_abs(), 0.0, 1e-6);
}

TEST(Constrained, GravityLoadsTheStanceFeet)
{
    // Under gravity with zero torque, pinned feet must push: nonzero
    // contact forces appear and joint accelerations shrink relative to
    // free fall.
    const RobotModel hyq = topology::build_robot(RobotId::kHyq);
    const TopologyInfo topo(hyq);
    const std::size_t n = hyq.num_links();
    const Vector q = random_state(hyq, 11).q;
    const Vector zero(n);
    const auto sol = constrained_forward_dynamics(hyq, topo, q, zero, zero,
                                                  hyq_feet(hyq));
    EXPECT_GT(sol.forces.max_abs(), 1.0);
    const Vector free = aba(hyq, q, zero, zero);
    EXPECT_LT(sol.qdd.norm(), free.norm());
}

TEST(Constrained, FootDriftStaysSmallUnderIntegration)
{
    // Start with velocities in the constraint null space and integrate the
    // constrained dynamics; foot positions must drift only at O(dt^2).
    const RobotModel hyq = topology::build_robot(RobotId::kHyq);
    const TopologyInfo topo(hyq);
    const std::size_t n = hyq.num_links();
    const auto contacts = hyq_feet(hyq);

    Vector q = random_state(hyq, 13).q;
    Vector qd = random_state(hyq, 14).qd;
    {
        // Project qd onto the null space of J (damped least squares).
        const Matrix jac = contact_jacobian(hyq, q, contacts);
        Matrix lam = jac * jac.transposed();
        for (std::size_t i = 0; i < lam.rows(); ++i)
            lam(i, i) += 1e-10;
        const Vector correction = jac.transposed() * linalg::Ldlt(lam)
                                                         .solve(jac * qd);
        qd -= correction;
    }

    // Record initial foot-tip positions (link origin + rotated offset).
    const auto foot_pos = [&](const ForwardKinematics &fk,
                              const Contact &c) {
        const auto &x = fk.base_to_link[c.link];
        return x.translation_vector() +
               x.rotation_matrix().transpose_mul(c.point);
    };
    const auto fk0 = forward_kinematics(hyq, q);
    std::vector<spatial::Vec3> feet0;
    for (const Contact &c : contacts)
        feet0.push_back(foot_pos(fk0, c));

    const double dt = 1e-4;
    const Vector tau(n);
    for (int k = 0; k < 100; ++k) {
        const auto sol =
            constrained_forward_dynamics(hyq, topo, q, qd, tau, contacts);
        for (std::size_t i = 0; i < n; ++i) {
            q[i] += qd[i] * dt + 0.5 * sol.qdd[i] * dt * dt;
            qd[i] += sol.qdd[i] * dt;
        }
    }
    const auto fk1 = forward_kinematics(hyq, q);
    for (std::size_t c = 0; c < contacts.size(); ++c) {
        const double drift = (foot_pos(fk1, contacts[c]) - feet0[c]).norm();
        EXPECT_LT(drift, 5e-4) << "foot " << c;
    }
}

TEST(Constrained, JacobianRowsMatchLinkJacobians)
{
    const RobotModel baxter = topology::build_robot(RobotId::kBaxter);
    const RobotState s = random_state(baxter, 15);
    const std::vector<Contact> contacts{
        {static_cast<std::size_t>(baxter.find_link("left_arm_link7")), {}},
        {static_cast<std::size_t>(baxter.find_link("right_arm_link7")),
         {}}};
    const Matrix jac = contact_jacobian(baxter, s.q, contacts);
    EXPECT_EQ(jac.rows(), 6u);
    const Matrix left = link_jacobian(baxter, s.q, contacts[0].link);
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t j = 0; j < baxter.num_links(); ++j)
            EXPECT_EQ(jac(r, j), left(3 + r, j));
}

} // namespace
} // namespace dynamics
} // namespace roboshape
