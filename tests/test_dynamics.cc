/**
 * @file
 * Tests for the rigid-body dynamics substrate: RNEA, CRBA, ABA, and the
 * analytical derivatives (paper Algs. 1-3), validated against independent
 * formulations and finite differences across all six robots.
 */

#include <gtest/gtest.h>

#include "dynamics/aba.h"
#include "dynamics/crba.h"
#include "dynamics/fd_derivatives.h"
#include "dynamics/finite_diff.h"
#include "dynamics/rnea.h"
#include "dynamics/rnea_derivatives.h"
#include "dynamics/robot_state.h"
#include "linalg/factorization.h"
#include "topology/robot_library.h"

namespace roboshape {
namespace dynamics {
namespace {

using linalg::Matrix;
using linalg::Vector;
using linalg::max_abs_diff;
using topology::RobotId;
using topology::RobotModel;
using topology::TopologyInfo;
using topology::all_robots;
using topology::build_robot;
using topology::robot_name;

/** Robots x seeds, the standard sweep for dynamics properties. */
class DynamicsSweep
    : public ::testing::TestWithParam<std::tuple<RobotId, std::uint32_t>>
{
  protected:
    void
    SetUp() override
    {
        model_ = build_robot(std::get<0>(GetParam()));
        seed_ = std::get<1>(GetParam());
        state_ = std::make_unique<RobotState>(random_state(*model_, seed_));
    }

    std::optional<RobotModel> model_;
    std::uint32_t seed_ = 0;
    std::unique_ptr<RobotState> state_;
};

std::string
sweep_name(
    const ::testing::TestParamInfo<std::tuple<RobotId, std::uint32_t>> &info)
{
    std::string name = robot_name(std::get<0>(info.param));
    for (char &c : name)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return name + "_s" + std::to_string(std::get<1>(info.param));
}

#define INSTANTIATE_SWEEP(suite)                                            \
    INSTANTIATE_TEST_SUITE_P(                                               \
        Robots, suite,                                                      \
        ::testing::Combine(::testing::ValuesIn(all_robots()),               \
                           ::testing::Values(1u, 2u, 3u)),                  \
        sweep_name)

// ---------------------------------------------------------------- RNEA ----

using RneaCrbaConsistency = DynamicsSweep;

TEST_P(RneaCrbaConsistency, TauEqualsMassTimesQddPlusBias)
{
    // tau = M(q) qdd + C(q, qd): two independent algorithms must agree.
    const Vector tau_rnea =
        rnea(*model_, state_->q, state_->qd, state_->qdd);
    const Matrix m = crba(*model_, state_->q);
    const Vector bias = bias_forces(*model_, state_->q, state_->qd);
    const Vector tau_crba = m * state_->qdd + bias;
    EXPECT_LT(max_abs_diff(tau_rnea, tau_crba), 1e-8);
}

INSTANTIATE_SWEEP(RneaCrbaConsistency);

using AbaInvertsRnea = DynamicsSweep;

TEST_P(AbaInvertsRnea, ForwardOfInverseIsIdentity)
{
    const Vector tau = rnea(*model_, state_->q, state_->qd, state_->qdd);
    const Vector qdd = aba(*model_, state_->q, state_->qd, tau);
    EXPECT_LT(max_abs_diff(qdd, state_->qdd), 1e-7);
}

INSTANTIATE_SWEEP(AbaInvertsRnea);

using MassMatrixProperties = DynamicsSweep;

TEST_P(MassMatrixProperties, SymmetricPositiveDefinite)
{
    const Matrix m = crba(*model_, state_->q);
    EXPECT_TRUE(m.is_symmetric(1e-9));
    EXPECT_TRUE(linalg::Ldlt(m).ok());
}

INSTANTIATE_SWEEP(MassMatrixProperties);

using BlockInverseEquivalence = DynamicsSweep;

TEST_P(BlockInverseEquivalence, LimbBlockInverseMatchesDense)
{
    const TopologyInfo topo(*model_);
    const Matrix m = crba(*model_, state_->q);
    const Matrix block_inv = mass_matrix_inverse(topo, m);
    const Matrix dense_inv = linalg::spd_inverse(m);
    EXPECT_LT(max_abs_diff(block_inv, dense_inv), 1e-8);
}

INSTANTIATE_SWEEP(BlockInverseEquivalence);

// --------------------------------------------------------- derivatives ----

using RneaDerivativeSweep = DynamicsSweep;

TEST_P(RneaDerivativeSweep, AnalyticalMatchesFiniteDifference)
{
    RneaCache cache;
    rnea(*model_, state_->q, state_->qd, state_->qdd, kDefaultGravity,
         &cache);
    const TopologyInfo topo(*model_);
    const RneaDerivatives d =
        rnea_derivatives(*model_, topo, state_->qd, cache);

    const Matrix fd_q =
        fd_dtau_dq(*model_, state_->q, state_->qd, state_->qdd);
    const Matrix fd_qd =
        fd_dtau_dqd(*model_, state_->q, state_->qd, state_->qdd);
    EXPECT_LT(max_abs_diff(d.dtau_dq, fd_q), 2e-5);
    EXPECT_LT(max_abs_diff(d.dtau_dqd, fd_qd), 2e-5);
}

INSTANTIATE_SWEEP(RneaDerivativeSweep);

using RneaDerivativeSparsity = DynamicsSweep;

TEST_P(RneaDerivativeSparsity, ZeroOutsideSubtreeAndRootPath)
{
    // dtau_i/dq_j can be nonzero only when i is in subtree(j) or i is an
    // ancestor of j — the structure the scheduler's task graph encodes.
    RneaCache cache;
    rnea(*model_, state_->q, state_->qd, state_->qdd, kDefaultGravity,
         &cache);
    const TopologyInfo topo(*model_);
    const RneaDerivatives d =
        rnea_derivatives(*model_, topo, state_->qd, cache);
    for (std::size_t i = 0; i < model_->num_links(); ++i) {
        for (std::size_t j = 0; j < model_->num_links(); ++j) {
            const bool coupled = topo.is_ancestor_or_self(j, i) ||
                                 topo.is_ancestor_or_self(i, j);
            if (!coupled) {
                EXPECT_EQ(d.dtau_dq(i, j), 0.0) << i << "," << j;
                EXPECT_EQ(d.dtau_dqd(i, j), 0.0) << i << "," << j;
            }
        }
    }
}

INSTANTIATE_SWEEP(RneaDerivativeSparsity);

using FdGradientSweep = DynamicsSweep;

TEST_P(FdGradientSweep, MatchesFiniteDifferenceOfAba)
{
    const TopologyInfo topo(*model_);
    const ForwardDynamicsGradients g = forward_dynamics_gradients(
        *model_, topo, state_->q, state_->qd, state_->tau);

    // Linearization point agrees with ABA.
    const Vector qdd_aba =
        aba(*model_, state_->q, state_->qd, state_->tau);
    EXPECT_LT(max_abs_diff(g.qdd, qdd_aba), 1e-7);

    const Matrix fd_q =
        fd_dqdd_dq(*model_, state_->q, state_->qd, state_->tau);
    const Matrix fd_qd =
        fd_dqdd_dqd(*model_, state_->q, state_->qd, state_->tau);
    EXPECT_LT(max_abs_diff(g.dqdd_dq, fd_q), 5e-5);
    EXPECT_LT(max_abs_diff(g.dqdd_dqd, fd_qd), 5e-5);
}

INSTANTIATE_SWEEP(FdGradientSweep);

// ----------------------------------------------------------- scenarios ----

TEST(Rnea, GravityTorqueOfHangingPendulum)
{
    // Single revolute link about the y axis with COM offset along z: at
    // q = 0 the rod hangs along +z; gravity (-z) exerts no torque.  At
    // q = pi/2 the rod is horizontal and the torque is m g L.
    topology::RobotModelBuilder b("pendulum");
    const double mass = 2.0, length = 0.5;
    b.add_link("rod", "",
               spatial::JointModel(spatial::JointType::kRevolute,
                                   spatial::Vec3::unit_y()),
               spatial::SpatialTransform(),
               spatial::SpatialInertia::from_mass_com_inertia(
                   mass, {0.0, 0.0, length}, spatial::Mat3::identity() *
                                                 0.001));
    const RobotModel m = b.finalize();
    Vector zero(1);
    Vector q(1);

    const Vector tau0 = rnea(m, q, zero, zero);
    EXPECT_NEAR(tau0[0], 0.0, 1e-12);

    q[0] = M_PI / 2.0;
    const Vector tau90 = rnea(m, q, zero, zero);
    EXPECT_NEAR(std::abs(tau90[0]), mass * 9.81 * length, 1e-9);
}

TEST(Rnea, ZeroGravityZeroMotionGivesZeroTorque)
{
    const RobotModel m = build_robot(RobotId::kBaxter);
    const std::size_t n = m.num_links();
    const Vector zero(n);
    const Vector q = random_state(m, 5).q;
    const Vector tau = rnea(m, q, zero, zero, spatial::Vec3::zero());
    EXPECT_NEAR(tau.max_abs(), 0.0, 1e-12);
}

TEST(Rnea, CacheStoresAccumulatedForces)
{
    const RobotModel m = build_robot(RobotId::kIiwa);
    const RobotState s = random_state(m, 7);
    RneaCache cache;
    const Vector tau = rnea(m, s.q, s.qd, s.qdd, kDefaultGravity, &cache);
    // tau_i == S_i . f_i with the accumulated forces.
    for (std::size_t i = 0; i < m.num_links(); ++i)
        EXPECT_NEAR(tau[i], cache.s[i].dot(cache.f[i]), 1e-10);
}

TEST(Aba, EquilibriumHoldsUnderGravityCompensation)
{
    const RobotModel m = build_robot(RobotId::kHyq);
    const std::size_t n = m.num_links();
    const Vector q = random_state(m, 11).q;
    const Vector zero(n);
    const Vector tau_hold = rnea(m, q, zero, zero); // gravity compensation
    const Vector qdd = aba(m, q, zero, tau_hold);
    EXPECT_NEAR(qdd.max_abs(), 0.0, 1e-8);
}

TEST(Aba, LinearInTorque)
{
    // qdd(tau) is affine with slope M^-1: checks dqdd/dtau == M^-1.
    const RobotModel m = build_robot(RobotId::kJaco2);
    const TopologyInfo topo(m);
    const RobotState s = random_state(m, 13);
    const std::size_t n = m.num_links();

    const Matrix minv =
        mass_matrix_inverse(topo, crba(m, s.q));
    const Vector qdd0 = aba(m, s.q, s.qd, s.tau);
    for (std::size_t j = 0; j < n; ++j) {
        Vector tau2 = s.tau;
        tau2[j] += 1.0;
        const Vector qdd1 = aba(m, s.q, s.qd, tau2);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_NEAR(qdd1[i] - qdd0[i], minv(i, j), 1e-7)
                << "i=" << i << " j=" << j;
    }
}

TEST(FdGradients, MassMatrixSharedAcrossOutputs)
{
    const RobotModel m = build_robot(RobotId::kBaxter);
    const TopologyInfo topo(m);
    const RobotState s = random_state(m, 19);
    const ForwardDynamicsGradients g =
        forward_dynamics_gradients(m, topo, s.q, s.qd, s.tau);
    EXPECT_LT(max_abs_diff(g.mass, crba(m, s.q)), 1e-12);
    const Matrix id = g.mass * g.mass_inv;
    EXPECT_LT(max_abs_diff(id, Matrix::identity(m.num_links())), 1e-8);
}

TEST(FdGradients, EnergyConservationSanity)
{
    // Integrate an unactuated, gravity-free iiwa briefly with small steps;
    // kinetic energy 0.5 qd^T M qd must be nearly conserved.
    const RobotModel m = build_robot(RobotId::kIiwa);
    const std::size_t n = m.num_links();
    Vector q = random_state(m, 29).q;
    Vector qd = random_state(m, 31).qd;
    const Vector tau(n);
    const spatial::Vec3 no_gravity = spatial::Vec3::zero();

    const auto energy = [&](const Vector &qx, const Vector &qdx) {
        const Matrix h = crba(m, qx);
        return 0.5 * qdx.dot(h * qdx);
    };
    const double e0 = energy(q, qd);
    const double dt = 1e-5;
    for (int step = 0; step < 200; ++step) {
        const Vector qdd = aba(m, q, qd, tau, no_gravity);
        for (std::size_t i = 0; i < n; ++i) {
            q[i] += qd[i] * dt + 0.5 * qdd[i] * dt * dt;
            qd[i] += qdd[i] * dt;
        }
    }
    EXPECT_NEAR(energy(q, qd), e0, 1e-3 * std::max(1.0, std::abs(e0)));
}

TEST(RobotState, DeterministicAndBounded)
{
    const RobotModel m = build_robot(RobotId::kHyq);
    const RobotState a = random_state(m, 42);
    const RobotState b = random_state(m, 42);
    EXPECT_EQ(max_abs_diff(a.q, b.q), 0.0);
    EXPECT_LE(a.q.max_abs(), 3.14159);
    EXPECT_LE(a.qd.max_abs(), 2.0);
    EXPECT_LE(a.tau.max_abs(), 20.0);
}

} // namespace
} // namespace dynamics
} // namespace roboshape
