/**
 * @file
 * Suite for the persistent work-stealing executor (core::Executor): index
 * coverage and lane exclusivity of parallel_for, byte-identical sweep and
 * run_batch outputs across thread counts {1, 2, 7, hw} and repeated runs
 * under stealing, job-graph dependency ordering (chain and diamond),
 * cycle rejection, env-var validation, and a counting-operator-new proof
 * that warm submissions never touch the heap.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "accel/sim_engine.h"
#include "core/design_space.h"
#include "core/executor.h"
#include "dynamics/fd_derivatives.h"
#include "dynamics/robot_state.h"
#include "linalg/matrix.h"
#include "topology/parametric_robots.h"
#include "topology/robot_library.h"
#include "topology/topology_info.h"

// ----------------------------------------------- allocation counting ----
// Same hook as test_sim_engine.cc: global new/delete are replaced for this
// binary, ticking only between arm() and read(); sanitizer builds keep
// their own allocator interceptors, so the hook is compiled out there.

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define ROBOSHAPE_COUNT_ALLOCS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define ROBOSHAPE_COUNT_ALLOCS 0
#else
#define ROBOSHAPE_COUNT_ALLOCS 1
#endif
#else
#define ROBOSHAPE_COUNT_ALLOCS 1
#endif

namespace {
std::atomic<bool> g_alloc_count_armed{false};
std::atomic<std::size_t> g_alloc_count{0};

void
alloc_counter_arm()
{
    g_alloc_count.store(0, std::memory_order_relaxed);
    g_alloc_count_armed.store(true, std::memory_order_relaxed);
}

std::size_t
alloc_counter_read()
{
    g_alloc_count_armed.store(false, std::memory_order_relaxed);
    return g_alloc_count.load(std::memory_order_relaxed);
}

#if ROBOSHAPE_COUNT_ALLOCS
void *
counted_alloc(std::size_t size)
{
    if (g_alloc_count_armed.load(std::memory_order_relaxed))
        g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    void *p = std::malloc(size ? size : 1);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}
#endif
} // namespace

#if ROBOSHAPE_COUNT_ALLOCS
void *
operator new(std::size_t size)
{
    return counted_alloc(size);
}

void *
operator new[](std::size_t size)
{
    return counted_alloc(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}
#endif

namespace {

using roboshape::core::DesignPoint;
using roboshape::core::DesignSpace;
using roboshape::core::Executor;
using roboshape::core::JobGraph;
using roboshape::core::kMaxExecutorLanes;

/** The widths the determinism suites pin: serial, small, more lanes than
 *  this machine likely has cores, and the hardware default (0). */
constexpr std::size_t kWidths[] = {1, 2, 7, 0};

// ------------------------------------------------------- parallel_for ----

TEST(ExecutorParallelFor, RunsEveryIndexExactlyOnceAtAnyWidth)
{
    constexpr std::size_t kCount = 1000;
    Executor &exec = Executor::instance();
    for (const std::size_t width : kWidths) {
        std::vector<std::atomic<int>> hits(kCount);
        std::vector<std::uint64_t> out(kCount, 0);
        exec.parallel_for(
            kCount,
            [&](std::size_t i) {
                hits[i].fetch_add(1, std::memory_order_relaxed);
                out[i] = i * i + 1;
            },
            width);
        for (std::size_t i = 0; i < kCount; ++i) {
            EXPECT_EQ(hits[i].load(), 1) << "index " << i << " at width "
                                         << width;
            EXPECT_EQ(out[i], i * i + 1);
        }
    }
}

TEST(ExecutorParallelFor, LaneIdsAreDenseAndExclusive)
{
    constexpr std::size_t kCount = 500;
    constexpr std::size_t kWidth = 7;
    Executor &exec = Executor::instance();
    const std::size_t width = exec.resolve_width(kCount, kWidth);
    ASSERT_EQ(width, kWidth);

    std::vector<std::atomic<bool>> in_use(kWidth);
    std::vector<std::atomic<std::uint64_t>> per_lane(kWidth);
    exec.parallel_for_lanes(
        kCount,
        [&](std::size_t i, std::size_t lane) {
            (void)i;
            ASSERT_LT(lane, kWidth);
            // A lane id is exclusive to one OS thread for the region, so
            // this flag can never be observed already set.
            EXPECT_FALSE(in_use[lane].exchange(true));
            per_lane[lane].fetch_add(1, std::memory_order_relaxed);
            in_use[lane].store(false);
        },
        kWidth);

    std::uint64_t total = 0;
    for (std::size_t lane = 0; lane < kWidth; ++lane)
        total += per_lane[lane].load();
    EXPECT_EQ(total, kCount);
}

TEST(ExecutorParallelFor, NestedCallsRunInlineWithoutDeadlock)
{
    constexpr std::size_t kOuter = 16;
    constexpr std::size_t kInner = 8;
    Executor &exec = Executor::instance();
    std::vector<std::atomic<int>> hits(kOuter * kInner);
    exec.parallel_for(
        kOuter,
        [&](std::size_t i) {
            exec.parallel_for_lanes(
                kInner,
                [&](std::size_t j, std::size_t lane) {
                    // Nested regions run inline on the submitting thread.
                    EXPECT_EQ(lane, 0u);
                    hits[i * kInner + j].fetch_add(1);
                },
                4);
        },
        4);
    for (std::size_t k = 0; k < kOuter * kInner; ++k)
        EXPECT_EQ(hits[k].load(), 1);
}

TEST(ExecutorParallelFor, ZeroCountReturnsImmediately)
{
    bool ran = false;
    Executor::instance().parallel_for(
        0, [&](std::size_t) { ran = true; }, 4);
    EXPECT_FALSE(ran);
}

TEST(ExecutorWidth, ResolveWidthClampsToCountAndCap)
{
    const Executor &exec = Executor::instance();
    EXPECT_EQ(exec.resolve_width(100, 7), 7u);
    EXPECT_EQ(exec.resolve_width(3, 7), 3u);
    EXPECT_EQ(exec.resolve_width(0, 7), 1u);
    EXPECT_EQ(exec.resolve_width(1, 0), 1u);
    EXPECT_LE(exec.resolve_width(1 << 20, 0), kMaxExecutorLanes);
    EXPECT_EQ(exec.resolve_width(1 << 20, 2 * kMaxExecutorLanes),
              kMaxExecutorLanes);
}

// ------------------------------------------------- sweep determinism ----

void
expect_points_identical(const std::vector<DesignPoint> &a,
                        const std::vector<DesignPoint> &b,
                        const std::string &label)
{
    ASSERT_EQ(a.size(), b.size()) << label;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].params, b[i].params) << label << " point " << i;
        EXPECT_EQ(a[i].cycles, b[i].cycles) << label << " point " << i;
        // Bit-exact, not approximately-equal: the composition arithmetic
        // is identical work regardless of which lane runs it.
        EXPECT_EQ(a[i].latency_us, b[i].latency_us)
            << label << " point " << i;
        EXPECT_EQ(a[i].resources.luts, b[i].resources.luts);
        EXPECT_EQ(a[i].resources.dsps, b[i].resources.dsps);
    }
}

TEST(ExecutorDeterminism, SweepPointsIdenticalAcrossThreadCounts)
{
    // An irregular topology (branching quadruped) and a deep serial chain
    // exercise heterogeneous job costs, i.e. real stealing.
    const roboshape::topology::RobotModel models[] = {
        roboshape::topology::build_robot(
            roboshape::topology::RobotId::kHyq),
        roboshape::topology::make_serial_chain(12),
    };
    for (const auto &m : models) {
        const DesignSpace reference = DesignSpace::sweep(
            m, roboshape::accel::default_timing(),
            roboshape::sched::KernelKind::kDynamicsGradient, 1);
        for (const std::size_t width : kWidths) {
            const DesignSpace space = DesignSpace::sweep(
                m, roboshape::accel::default_timing(),
                roboshape::sched::KernelKind::kDynamicsGradient, width);
            expect_points_identical(reference.points(), space.points(),
                                    m.name() + " at width " +
                                        std::to_string(width));
        }
        // Repeated runs at one width must also agree (steal interleaving
        // differs run to run; outputs must not).
        for (int rep = 0; rep < 3; ++rep) {
            const DesignSpace space = DesignSpace::sweep(
                m, roboshape::accel::default_timing(),
                roboshape::sched::KernelKind::kDynamicsGradient, 7);
            expect_points_identical(reference.points(), space.points(),
                                    m.name() + " repeat " +
                                        std::to_string(rep));
        }
    }
}

TEST(ExecutorDeterminism, RunBatchIdenticalAcrossThreadCounts)
{
    using roboshape::accel::AcceleratorDesign;
    using roboshape::accel::EngineResult;
    using roboshape::accel::InputPacket;
    using roboshape::accel::SimEngine;

    const roboshape::topology::RobotModel m =
        roboshape::topology::build_robot(
            roboshape::topology::RobotId::kIiwa);
    const roboshape::topology::TopologyInfo topo(m);
    const AcceleratorDesign design(m, {4, 4, 4});
    const SimEngine engine(design);

    constexpr std::size_t kPackets = 23; // prime: uneven chunking
    std::vector<roboshape::dynamics::RobotState> states;
    std::vector<roboshape::dynamics::ForwardDynamicsGradients> refs;
    std::vector<InputPacket> packets;
    for (std::size_t i = 0; i < kPackets; ++i) {
        states.push_back(roboshape::dynamics::random_state(
            m, 500 + static_cast<int>(i)));
        const auto &s = states.back();
        refs.push_back(roboshape::dynamics::forward_dynamics_gradients(
            m, topo, s.q, s.qd, s.tau));
    }
    for (std::size_t i = 0; i < kPackets; ++i)
        packets.push_back({&states[i].q, &states[i].qd, &refs[i].qdd,
                           &refs[i].mass_inv});

    std::vector<EngineResult> serial(kPackets);
    auto ws = engine.make_workspace();
    for (std::size_t i = 0; i < kPackets; ++i)
        engine.run(ws, packets[i], serial[i]);

    for (const std::size_t width : kWidths) {
        for (int rep = 0; rep < 2; ++rep) {
            std::vector<EngineResult> batched(kPackets);
            SimEngine::BatchWorkspace batch;
            engine.run_batch(packets, batched, batch, width);
            for (std::size_t i = 0; i < kPackets; ++i) {
                EXPECT_EQ(roboshape::linalg::max_abs_diff(
                              batched[i].dqdd_dq, serial[i].dqdd_dq),
                          0.0)
                    << "packet " << i << " width " << width << " rep "
                    << rep;
                EXPECT_EQ(roboshape::linalg::max_abs_diff(
                              batched[i].dqdd_dqd, serial[i].dqdd_dqd),
                          0.0);
                EXPECT_EQ(roboshape::linalg::max_abs_diff(batched[i].tau,
                                                          serial[i].tau),
                          0.0);
            }
        }
    }
}

// ---------------------------------------------------------- job graph ----

TEST(ExecutorJobGraph, ChainRunsInDependencyOrder)
{
    constexpr std::size_t kChain = 24;
    for (const std::size_t width : kWidths) {
        JobGraph graph;
        std::atomic<std::uint64_t> clock{1};
        std::vector<std::uint64_t> seq(kChain, 0);
        std::vector<JobGraph::NodeId> ids;
        for (std::size_t k = 0; k < kChain; ++k)
            ids.push_back(graph.add([&, k](std::size_t) {
                seq[k] = clock.fetch_add(1, std::memory_order_relaxed);
            }));
        for (std::size_t k = 1; k < kChain; ++k)
            graph.add_edge(ids[k - 1], ids[k]);

        Executor::instance().run(graph, width);
        for (std::size_t k = 1; k < kChain; ++k)
            EXPECT_LT(seq[k - 1], seq[k])
                << "chain order broken at " << k << ", width " << width;
    }
}

TEST(ExecutorJobGraph, DiamondWaitsForBothBranches)
{
    // a -> {b, c} -> d, repeated so steal interleavings vary.
    for (int rep = 0; rep < 25; ++rep) {
        JobGraph graph;
        std::atomic<std::uint64_t> clock{1};
        std::uint64_t seq[4] = {0, 0, 0, 0};
        JobGraph::NodeId ids[4];
        for (int k = 0; k < 4; ++k)
            ids[k] = graph.add([&, k](std::size_t) {
                seq[k] = clock.fetch_add(1, std::memory_order_relaxed);
            });
        graph.add_edge(ids[0], ids[1]);
        graph.add_edge(ids[0], ids[2]);
        graph.add_edge(ids[1], ids[3]);
        graph.add_edge(ids[2], ids[3]);

        Executor::instance().run(graph, 4);
        EXPECT_LT(seq[0], seq[1]);
        EXPECT_LT(seq[0], seq[2]);
        EXPECT_LT(seq[1], seq[3]);
        EXPECT_LT(seq[2], seq[3]);
    }
}

TEST(ExecutorJobGraph, ReusedGraphRunsEveryNodeEachTime)
{
    constexpr std::size_t kNodes = 40;
    JobGraph graph;
    std::vector<std::atomic<int>> hits(kNodes);
    std::vector<JobGraph::NodeId> ids;
    for (std::size_t k = 0; k < kNodes; ++k)
        ids.push_back(
            graph.add([&, k](std::size_t) { hits[k].fetch_add(1); }));
    // Sparse dependencies: every fourth node gates the next one.
    for (std::size_t k = 4; k < kNodes; k += 4)
        graph.add_edge(ids[k - 4], ids[k]);

    for (int run = 1; run <= 3; ++run) {
        Executor::instance().run(graph, 7);
        for (std::size_t k = 0; k < kNodes; ++k)
            EXPECT_EQ(hits[k].load(), run) << "node " << k;
    }
}

TEST(ExecutorJobGraph, CycleThrowsInvalidArgument)
{
    JobGraph graph;
    const JobGraph::NodeId a = graph.add([](std::size_t) {});
    const JobGraph::NodeId b = graph.add([](std::size_t) {});
    const JobGraph::NodeId c = graph.add([](std::size_t) {});
    graph.add_edge(a, b);
    graph.add_edge(b, c);
    graph.add_edge(c, a);
    EXPECT_THROW(Executor::instance().run(graph, 4),
                 std::invalid_argument);
    EXPECT_THROW(Executor::instance().run(graph, 1),
                 std::invalid_argument);
}

TEST(ExecutorJobGraph, EmptyGraphIsANoOp)
{
    JobGraph graph;
    Executor::instance().run(graph, 4); // must not hang or throw
    EXPECT_EQ(graph.size(), 0u);
}

// ---------------------------------------------------- allocation-free ----

// A warm executor must keep parallel_for and JobGraph submissions off the
// heap entirely: the region descriptor is member storage, callbacks stay
// on the caller's stack, deques are pre-sized, and the exec.* registry
// entries are pre-registered by the constructor.
TEST(ExecutorAllocations, WarmParallelForIsAllocationFree)
{
#if !ROBOSHAPE_COUNT_ALLOCS
    GTEST_SKIP() << "allocation counting disabled under sanitizers";
#endif
    constexpr std::size_t kCount = 128;
    constexpr std::size_t kWidth = 4;
    Executor &exec = Executor::instance();
    std::vector<std::uint64_t> out(kCount, 0);
    const auto body = [&](std::size_t i) { out[i] = i + 7; };
    exec.parallel_for(kCount, body, kWidth); // warm-up spawns workers
    alloc_counter_arm();
    exec.parallel_for(kCount, body, kWidth);
    exec.parallel_for(kCount, body, kWidth);
    EXPECT_EQ(alloc_counter_read(), 0u);
    for (std::size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(out[i], i + 7);
}

TEST(ExecutorAllocations, WarmJobGraphRunsAreAllocationFree)
{
#if !ROBOSHAPE_COUNT_ALLOCS
    GTEST_SKIP() << "allocation counting disabled under sanitizers";
#endif
    constexpr std::size_t kNodes = 32;
    JobGraph graph;
    std::vector<std::uint64_t> out(kNodes, 0);
    std::vector<JobGraph::NodeId> ids;
    for (std::size_t k = 0; k < kNodes; ++k)
        ids.push_back(
            graph.add([&out, k](std::size_t) { out[k] += k + 1; }));
    for (std::size_t k = 1; k < kNodes; k += 2)
        graph.add_edge(ids[k - 1], ids[k]);

    Executor &exec = Executor::instance();
    exec.run(graph, 4); // warm-up sizes pending_/scratch
    alloc_counter_arm();
    exec.run(graph, 4);
    exec.run(graph, 4);
    EXPECT_EQ(alloc_counter_read(), 0u);
    for (std::size_t k = 0; k < kNodes; ++k)
        EXPECT_EQ(out[k], 3 * (k + 1));
}

// ------------------------------------------------------ env validation ----

// The env tests mutate the process environment; each restores it so the
// surrounding tests see the default worker count.
class ExecutorEnv : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        unsetenv("ROBOSHAPE_THREADS");
        unsetenv("ROBOSHAPE_SWEEP_THREADS");
    }
};

TEST_F(ExecutorEnv, ValidOverrideIsHonored)
{
    setenv("ROBOSHAPE_THREADS", "3", 1);
    EXPECT_EQ(Executor::instance().worker_count(), 3u);
    setenv("ROBOSHAPE_THREADS", "1", 1);
    EXPECT_EQ(Executor::instance().worker_count(), 1u);
}

TEST_F(ExecutorEnv, NewNameWinsOverDeprecatedAlias)
{
    setenv("ROBOSHAPE_SWEEP_THREADS", "2", 1);
    EXPECT_EQ(Executor::instance().worker_count(), 2u)
        << "deprecated alias must still work";
    setenv("ROBOSHAPE_THREADS", "5", 1);
    EXPECT_EQ(Executor::instance().worker_count(), 5u)
        << "ROBOSHAPE_THREADS must take precedence";
}

TEST_F(ExecutorEnv, GarbageValuesFallBackToDefault)
{
    unsetenv("ROBOSHAPE_THREADS");
    unsetenv("ROBOSHAPE_SWEEP_THREADS");
    const std::size_t fallback = Executor::instance().worker_count();
    // Pre-PR-7 strtoul parsed "7abc" as 7 and "abc" as 0 silently; all of
    // these must now be rejected whole, not prefix-parsed.
    const char *garbage[] = {"abc", "7abc", "-2", "0", " 4",
                             "99999999999999999999999999"};
    for (const char *value : garbage) {
        setenv("ROBOSHAPE_THREADS", value, 1);
        EXPECT_EQ(Executor::instance().worker_count(), fallback)
            << "value '" << value << "' must be rejected";
    }
}

TEST_F(ExecutorEnv, OverrideIsCappedAtMaxLanes)
{
    setenv("ROBOSHAPE_THREADS", "100000", 1);
    EXPECT_EQ(Executor::instance().worker_count(), kMaxExecutorLanes);
}

} // namespace
