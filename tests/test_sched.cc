/**
 * @file
 * Tests for task-graph generation, list scheduling, allocation strategies,
 * and blocked-multiply scheduling.
 */

#include <gtest/gtest.h>

#include "sched/allocation.h"
#include "sched/block_schedule.h"
#include "sched/list_scheduler.h"
#include "sched/task_graph.h"
#include "sched/timeline.h"
#include "topology/robot_library.h"
#include "topology/topology_info.h"

namespace roboshape {
namespace sched {
namespace {

using topology::RobotId;
using topology::RobotModel;
using topology::TopologyInfo;
using topology::all_robots;
using topology::build_robot;
using topology::robot_name;

TaskTiming
unit_timing()
{
    return TaskTiming{1, 1, 1, 1};
}

// ----------------------------------------------------------- task graph ----

TEST(TaskGraph, CountsMatchTopologyFormulas)
{
    for (RobotId id : all_robots()) {
        const RobotModel m = build_robot(id);
        const TopologyInfo topo(m);
        const TaskGraph g(topo);
        const std::size_t n = m.num_links();

        EXPECT_EQ(g.tasks_of_type(TaskType::kRneaForward).size(), n);
        EXPECT_EQ(g.tasks_of_type(TaskType::kRneaBackward).size(), n);
        EXPECT_EQ(g.tasks_of_type(TaskType::kGradForward).size(), n);

        // Backward gradient tasks: per column j, subtree(j) plus strict
        // ancestors — sum of (subtree_size + depth - 1).
        std::size_t expected = 0;
        for (std::size_t j = 0; j < n; ++j)
            expected += topo.subtree_size(j) + topo.depth(j) - 1;
        EXPECT_EQ(g.tasks_of_type(TaskType::kGradBackward).size(), expected)
            << robot_name(id);
    }
}

TEST(TaskGraph, DependencyIdsAreTopologicallyOrdered)
{
    const RobotModel topo_model = build_robot(RobotId::kBaxter);
    const TopologyInfo topo(topo_model);
    const TaskGraph g(topo);
    for (const Task &t : g.tasks())
        for (TaskId d : t.deps)
            EXPECT_LT(d, t.id) << t.label();
}

TEST(TaskGraph, GradBackwardCoverage)
{
    const RobotModel m = build_robot(RobotId::kJaco2);
    const TopologyInfo topo(m);
    const TaskGraph g(topo);
    const std::size_t n = m.num_links();
    for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t i = 0; i < n; ++i) {
            const bool coupled = topo.is_ancestor_or_self(j, i) ||
                                 topo.is_ancestor_or_self(i, j);
            EXPECT_EQ(g.grad_backward(j, i) != kNoTask, coupled)
                << "j=" << j << " i=" << i;
        }
    }
}

TEST(TaskGraph, InitialParallelismMatchesFig14Intuition)
{
    // Forward threads launch per independent limb; Baxter has 3 limbs.
    const RobotModel baxter_model = build_robot(RobotId::kBaxter);
    const TopologyInfo baxter_topo(baxter_model);
    const TaskGraph baxter(baxter_topo);
    EXPECT_EQ(baxter.forward_initial_parallelism(), 3u);
    // HyQ: 4 legs.
    const RobotModel hyq_model = build_robot(RobotId::kHyq);
    const TopologyInfo hyq_topo(hyq_model);
    const TaskGraph hyq(hyq_topo);
    EXPECT_EQ(hyq.forward_initial_parallelism(), 4u);
    // iiwa: a single chain.
    const RobotModel iiwa_model = build_robot(RobotId::kIiwa);
    const TopologyInfo iiwa_topo(iiwa_model);
    const TaskGraph iiwa(iiwa_topo);
    EXPECT_EQ(iiwa.forward_initial_parallelism(), 1u);
    // Backward threads start at the deepest link of every column's
    // subtree; strictly more of them than forward threads on branching
    // robots.
    EXPECT_GT(baxter.backward_initial_parallelism(),
              baxter.forward_initial_parallelism());
}

TEST(TaskGraph, LabelsAreReadable)
{
    const RobotModel m = build_robot(RobotId::kIiwa);
    const TopologyInfo topo(m);
    const TaskGraph g(topo);
    EXPECT_EQ(g.task(g.rnea_forward(0)).label(), "rneaFwd[i=0]");
    EXPECT_EQ(g.task(g.grad_backward(2, 3)).label(), "gradBwd[i=3,j=2]");
}

// ------------------------------------------------------------ scheduler ----

class ScheduleValidity
    : public ::testing::TestWithParam<std::tuple<RobotId, int>>
{
};

TEST_P(ScheduleValidity, StagedAndPipelinedSchedulesAreValid)
{
    const RobotModel m = build_robot(std::get<0>(GetParam()));
    const std::size_t pes =
        static_cast<std::size_t>(std::get<1>(GetParam()));
    const TopologyInfo topo(m);
    const TaskGraph g(topo);
    const TaskTiming timing{4, 3, 6, 3};

    const Schedule fwd = schedule_stage(
        g, {TaskType::kRneaForward, TaskType::kGradForward}, pes, timing);
    EXPECT_EQ(validate_schedule(g, fwd), "");

    const Schedule bwd = schedule_stage(
        g, {TaskType::kRneaBackward, TaskType::kGradBackward}, pes, timing);
    EXPECT_EQ(validate_schedule(g, bwd), "");

    const Schedule joint = schedule_pipelined(g, pes, pes, timing);
    EXPECT_EQ(validate_schedule(g, joint), "");

    // Pipelined single-shot latency can never beat the critical path nor
    // lose to running the stages back to back.
    EXPECT_LE(joint.makespan, fwd.makespan + bwd.makespan);
}

INSTANTIATE_TEST_SUITE_P(
    RobotsAndPes, ScheduleValidity,
    ::testing::Combine(::testing::ValuesIn(all_robots()),
                       ::testing::Values(1, 2, 3, 7, 16)),
    [](const auto &gen_info) {
        std::string name = robot_name(std::get<0>(gen_info.param));
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name + "_pe" + std::to_string(std::get<1>(gen_info.param));
    });

TEST(Scheduler, MorePesNeverHurtTraversalLatency)
{
    // Latency is monotone nonincreasing in PE count for every robot.
    for (RobotId id : all_robots()) {
        const RobotModel topo_model = build_robot(id);
        const TopologyInfo topo(topo_model);
        const TaskGraph g(topo);
        std::int64_t prev = std::numeric_limits<std::int64_t>::max();
        for (std::size_t pes = 1; pes <= topo.num_links(); ++pes) {
            const Schedule s = schedule_stage(
                g, {TaskType::kRneaForward, TaskType::kGradForward}, pes,
                unit_timing());
            EXPECT_LE(s.makespan, prev)
                << robot_name(id) << " pes=" << pes;
            prev = s.makespan;
        }
    }
}

TEST(Scheduler, SinglePeSerializesEverything)
{
    const RobotModel topo_model = build_robot(RobotId::kIiwa);
    const TopologyInfo topo(topo_model);
    const TaskGraph g(topo);
    const Schedule s = schedule_stage(
        g, {TaskType::kRneaForward, TaskType::kGradForward}, 1,
        unit_timing());
    // 7 RNEA + 7 gradient tasks, strictly sequential on one PE.
    EXPECT_EQ(s.makespan, 14);
    EXPECT_EQ(s.forward_rom.size(), 1u);
    EXPECT_EQ(s.forward_rom[0].size(), 14u);
}

TEST(Scheduler, ChainRobotForwardLatencyIsChainBound)
{
    // For a serial chain, dependencies serialize each traversal: even with
    // N PEs, the forward stage cannot beat RNEA chain + 1 gradient task.
    const RobotModel topo_model = build_robot(RobotId::kIiwa);
    const TopologyInfo topo(topo_model);
    const TaskGraph g(topo);
    const Schedule s = schedule_stage(
        g, {TaskType::kRneaForward, TaskType::kGradForward}, 7,
        unit_timing());
    EXPECT_EQ(s.makespan, 8); // 7-deep RNEA chain, last grad overlaps +1
}

TEST(Scheduler, IndependentLimbsScaleWithPes)
{
    // HyQ's four independent legs: 4 PEs should cut the forward stage to
    // roughly a quarter of the 1-PE serialization.
    const RobotModel topo_model = build_robot(RobotId::kHyq);
    const TopologyInfo topo(topo_model);
    const TaskGraph g(topo);
    const auto run = [&](std::size_t pes) {
        return schedule_stage(
                   g, {TaskType::kRneaForward, TaskType::kGradForward}, pes,
                   unit_timing())
            .makespan;
    };
    EXPECT_EQ(run(1), 24);
    EXPECT_EQ(run(4), 6); // each leg: 3 RNEA + 3 grad on its own PE
}

TEST(Scheduler, CheckpointRestoresHappenOnlyOnBranchSwitches)
{
    // A single chain on one PE in thread order should never restore.
    const RobotModel topo_model = build_robot(RobotId::kIiwa);
    const TopologyInfo topo(topo_model);
    const TaskGraph g(topo);
    const Schedule s = schedule_stage(
        g, {TaskType::kRneaForward}, 1, unit_timing());
    EXPECT_EQ(s.checkpoint_restores, 0u);

    // One PE over four independent legs must hop between limbs.
    const RobotModel hyq_model = build_robot(RobotId::kHyq);
    const TopologyInfo hyq(hyq_model);
    const TaskGraph gh(hyq);
    const Schedule sh = schedule_stage(
        gh, {TaskType::kRneaForward}, 1, unit_timing());
    EXPECT_GE(sh.checkpoint_restores, 3u);
}

TEST(Scheduler, RomsContainEveryScheduledTaskOnce)
{
    const RobotModel topo_model = build_robot(RobotId::kBaxter);
    const TopologyInfo topo(topo_model);
    const TaskGraph g(topo);
    const Schedule s = schedule_pipelined(g, 3, 4, unit_timing());
    std::vector<int> seen(g.size(), 0);
    for (const auto &rom : s.forward_rom)
        for (TaskId id : rom)
            ++seen[id];
    for (const auto &rom : s.backward_rom)
        for (TaskId id : rom)
            ++seen[id];
    for (const Task &t : g.tasks())
        EXPECT_EQ(seen[t.id], 1) << t.label();
}

// ------------------------------------------------------------ allocation ----

TEST(Allocation, StrategiesMatchTable3Arithmetic)
{
    const topology::TopologyMetrics baxter{
        15, 7, 5.0, 7, 2.83};
    EXPECT_EQ(allocate(AllocationStrategy::kTotalLinks, baxter),
              (Allocation{15, 15}));
    EXPECT_EQ(allocate(AllocationStrategy::kAvgLeafDepth, baxter),
              (Allocation{5, 5}));
    EXPECT_EQ(allocate(AllocationStrategy::kMaxLeafDepth, baxter),
              (Allocation{7, 7}));
    EXPECT_EQ(allocate(AllocationStrategy::kMaxDescendants, baxter),
              (Allocation{7, 7}));
    EXPECT_EQ(allocate(AllocationStrategy::kHybrid, baxter),
              (Allocation{7, 7}));

    const topology::TopologyMetrics jaco3{15, 9, 9.0, 15, 0.0};
    EXPECT_EQ(allocate(AllocationStrategy::kHybrid, jaco3),
              (Allocation{9, 15}));
}

TEST(Allocation, NeverReturnsZeroPes)
{
    const topology::TopologyMetrics degenerate{1, 1, 0.4, 1, 0.0};
    for (AllocationStrategy s : all_strategies()) {
        const Allocation a = allocate(s, degenerate);
        EXPECT_GE(a.pes_fwd, 1u);
        EXPECT_GE(a.pes_bwd, 1u);
    }
}

// --------------------------------------------------------- block multiply ----

TEST(BlockSchedule, MaskBuilders)
{
    const RobotModel topo_model = build_robot(RobotId::kBaxter);
    const TopologyInfo topo(topo_model);
    const SparsityMask minv = mass_inverse_mask(topo);
    // Head (link 0) decouples from both arms in M^-1.
    EXPECT_TRUE(minv[0][0]);
    EXPECT_FALSE(minv[0][1]);
    EXPECT_FALSE(minv[1][8]);
    // 1 + 49 + 49 nonzeros.
    std::size_t nnz = 0;
    for (const auto &row : minv)
        for (bool b : row)
            nnz += b;
    EXPECT_EQ(nnz, 99u);
}

TEST(BlockSchedule, AlignedBlockSizesMinimizeHyqLatency)
{
    // Paper Fig. 15: HyQ (four 3-link legs) favors block sizes 3, 6, 9.
    const RobotModel topo_model = build_robot(RobotId::kHyq);
    const TopologyInfo topo(topo_model);
    const SparsityMask a = mass_inverse_mask(topo);
    const SparsityMask b = derivative_mask(topo);
    const TileTiming timing{1, 2};
    std::vector<std::int64_t> latency(11, 0);
    for (std::size_t bs = 1; bs <= 10; ++bs)
        latency[bs] =
            schedule_block_multiply(a, b, bs, 3, timing).makespan;

    // Aligned sizes beat their misaligned neighbors.
    EXPECT_LT(latency[3], latency[4]);
    EXPECT_LT(latency[6], latency[4]);
    EXPECT_LT(latency[6], latency[5]);
    EXPECT_LT(latency[6], latency[7]);
    EXPECT_LT(latency[9], latency[8]);
    EXPECT_LT(latency[9], latency[10]);
}

TEST(BlockSchedule, NopCountMatchesHandComputedBaxterPattern)
{
    // Paper Fig. 6b: Baxter's 15x15 mass matrix in 4x4 blocks — the 4x4
    // tile grid has 6 all-zero tiles (the paper's NOP blocks).
    const RobotModel topo_model = build_robot(RobotId::kBaxter);
    const TopologyInfo topo(topo_model);
    const SparsityMask minv = mass_inverse_mask(topo);
    const BlockSchedule s = schedule_block_multiply(
        minv, derivative_mask(topo), 4, 3, TileTiming{});
    EXPECT_EQ(s.tile_dim, 4u);
    // Per product: 4^3 = 64 tile triples; executed counted exactly.
    EXPECT_EQ((s.executed_tiles + s.nop_tiles), 128u);
    EXPECT_GT(s.nop_tiles, 0u);
}

TEST(BlockSchedule, BlockCoveringWholeMatrixIsOneDenseTile)
{
    const RobotModel topo_model = build_robot(RobotId::kIiwa);
    const TopologyInfo topo(topo_model);
    const BlockSchedule s = schedule_block_multiply(
        mass_inverse_mask(topo), derivative_mask(topo), 7, 3, TileTiming{});
    EXPECT_EQ(s.tile_dim, 1u);
    EXPECT_EQ(s.executed_tiles, 2u); // one per product
    EXPECT_EQ(s.nop_tiles, 0u);
}

TEST(BlockSchedule, MoreUnitsNeverIncreaseLatency)
{
    const RobotModel topo_model = build_robot(RobotId::kHyqWithArm);
    const TopologyInfo topo(topo_model);
    const SparsityMask a = mass_inverse_mask(topo);
    const SparsityMask b = derivative_mask(topo);
    std::int64_t prev = std::numeric_limits<std::int64_t>::max();
    for (std::size_t units = 1; units <= 8; ++units) {
        const std::int64_t ms =
            schedule_block_multiply(a, b, 3, units, TileTiming{}).makespan;
        EXPECT_LE(ms, prev) << units;
        prev = ms;
    }
}

TEST(BlockSchedule, PaddingGrowsOnMisalignment)
{
    const RobotModel topo_model = build_robot(RobotId::kHyq);
    const TopologyInfo topo(topo_model);
    const SparsityMask a = mass_inverse_mask(topo);
    const SparsityMask b = derivative_mask(topo);
    const BlockSchedule aligned =
        schedule_block_multiply(a, b, 3, 3, TileTiming{});
    const BlockSchedule misaligned =
        schedule_block_multiply(a, b, 5, 3, TileTiming{});
    EXPECT_EQ(aligned.padded_zero_elements, 0u);
    EXPECT_GT(misaligned.padded_zero_elements, 0u);
}

// -------------------------------------------------------------- timeline ----

TEST(Timeline, RendersOneRowPerPe)
{
    const RobotModel m = build_robot(RobotId::kHyq);
    const TopologyInfo topo(m);
    const TaskGraph g(topo);
    const Schedule s = schedule_pipelined(g, 3, 2, unit_timing());
    const std::string text = render_timeline(g, s);
    EXPECT_NE(text.find("fwd0 |"), std::string::npos);
    EXPECT_NE(text.find("fwd2 |"), std::string::npos);
    EXPECT_NE(text.find("bwd1 |"), std::string::npos);
    EXPECT_EQ(text.find("bwd2 |"), std::string::npos);
}

TEST(Timeline, BusyCharactersMatchScheduledWork)
{
    // With unit tasks and no bucketing, non-idle glyph count equals the
    // number of scheduled tasks.
    const RobotModel m = build_robot(RobotId::kIiwa);
    const TopologyInfo topo(m);
    const TaskGraph g(topo);
    const Schedule s = schedule_stage(
        g, {TaskType::kRneaForward, TaskType::kGradForward}, 2,
        unit_timing());
    const std::string text = render_timeline(g, s, 1000);
    std::size_t busy = 0;
    bool in_row = false;
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (text[i] == '|')
            in_row = !in_row;
        else if (in_row && text[i] != '.')
            ++busy;
    }
    EXPECT_EQ(busy, 14u);
}

TEST(Timeline, LegendListsTaskStarts)
{
    const RobotModel m = build_robot(RobotId::kIiwa);
    const TopologyInfo topo(m);
    const TaskGraph g(topo);
    const Schedule s = schedule_stage(
        g, {TaskType::kRneaForward}, 1, unit_timing());
    const std::string text = render_timeline(g, s, 72, true);
    EXPECT_NE(text.find("rneaFwd[i=0]@0"), std::string::npos);
    EXPECT_NE(text.find("rneaFwd[i=6]@6"), std::string::npos);
}

} // namespace
} // namespace sched
} // namespace roboshape
