/**
 * @file
 * roboshape_lint library tests over the fixture corpus
 * (tests/lint_corpus/, docs/STATIC_ANALYSIS.md).
 *
 * Every bad_* fixture's findings are pinned byte-for-byte against a
 * golden bad_*.expected (regenerate intentionally with
 * ROBOSHAPE_UPDATE_GOLDEN=1, same protocol as the trace golden in
 * test_obs.cc); every ok_* fixture must be silent.  The suite also
 * covers rule filtering, both counter-name-sync directions, suppression
 * semantics, and the --json rendering.
 */

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/lint.h"
#include "obs/json.h"

namespace {

using roboshape::lint::Finding;
using roboshape::lint::LintConfig;
using roboshape::lint::Linter;

const char *const kCorpusDir = ROBOSHAPE_SOURCE_DIR "/tests/lint_corpus/";

std::string
read_file(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Lints one corpus file against the corpus counter catalog. */
std::vector<Finding>
lint_fixture(const std::string &name, LintConfig config = {})
{
    config.doc_to_code = false; // single-file scans: code->doc only
    Linter l(config);
    l.set_counter_doc("tests/lint_corpus/counter_doc.md",
                      read_file(std::string(kCorpusDir) + "counter_doc.md"));
    l.add_file("tests/lint_corpus/" + name,
               read_file(std::string(kCorpusDir) + name));
    return l.finish();
}

std::string
render(const std::vector<Finding> &findings)
{
    std::string out;
    for (const Finding &f : findings)
        out += f.to_string() + "\n";
    return out;
}

class BadFixtureGolden : public ::testing::TestWithParam<const char *>
{
};

TEST_P(BadFixtureGolden, FindingsMatchGolden)
{
    const std::string name = GetParam();
    const std::vector<Finding> findings = lint_fixture(name + ".cc");
    ASSERT_FALSE(findings.empty()) << name << ".cc produced no findings";
    const std::string rendered = render(findings);

    const std::string golden_path =
        std::string(kCorpusDir) + name + ".expected";
    // Same regeneration switch as the trace golden (test_obs.cc).
    if (std::getenv("ROBOSHAPE_UPDATE_GOLDEN") // NOLINT(banned-env-raw)
        != nullptr) {
        std::ofstream out(golden_path, std::ios::binary);
        out << rendered;
        ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
        return;
    }
    EXPECT_EQ(rendered, read_file(golden_path))
        << "golden drift for " << name
        << " (ROBOSHAPE_UPDATE_GOLDEN=1 regenerates)";
}

INSTANTIATE_TEST_SUITE_P(Corpus, BadFixtureGolden,
                         ::testing::Values("bad_raw_parse", "bad_alloc_warm",
                                           "bad_json_writer",
                                           "bad_nondeterminism",
                                           "bad_counter_sync", "bad_env_raw",
                                           "bad_unused_suppression"),
                         [](const auto &gen_info) {
                             return std::string(gen_info.param);
                         });

class OkFixtureSilent : public ::testing::TestWithParam<const char *>
{
};

TEST_P(OkFixtureSilent, ProducesNoFindings)
{
    const std::vector<Finding> findings =
        lint_fixture(std::string(GetParam()) + ".cc");
    EXPECT_TRUE(findings.empty()) << render(findings);
}

INSTANTIATE_TEST_SUITE_P(Corpus, OkFixtureSilent,
                         ::testing::Values("ok_raw_parse", "ok_alloc_warm",
                                           "ok_json_writer",
                                           "ok_nondeterminism",
                                           "ok_counter_sync", "ok_env_raw",
                                           "ok_suppressed"),
                         [](const auto &gen_info) {
                             return std::string(gen_info.param);
                         });

TEST(LintRules, EveryRuleFiresSomewhereInTheCorpus)
{
    std::set<std::string> fired;
    for (const char *name :
         {"bad_raw_parse", "bad_alloc_warm", "bad_json_writer",
          "bad_nondeterminism", "bad_counter_sync", "bad_env_raw",
          "bad_unused_suppression"})
        for (const Finding &f : lint_fixture(std::string(name) + ".cc"))
            fired.insert(f.rule);
    for (const auto &info : roboshape::lint::rule_catalog())
        EXPECT_TRUE(fired.count(std::string(info.name)))
            << "no corpus fixture exercises rule " << info.name;
    EXPECT_TRUE(fired.count("unused-suppression"));
}

TEST(LintRules, RuleFilterRunsOnlyTheNamedRule)
{
    LintConfig only_parse;
    only_parse.rules = {"banned-raw-parse"};
    for (const Finding &f :
         lint_fixture("bad_raw_parse.cc", only_parse))
        EXPECT_EQ(f.rule, "banned-raw-parse");
    EXPECT_FALSE(lint_fixture("bad_raw_parse.cc", only_parse).empty());
    // Other rules' fixtures go quiet under the filter...
    EXPECT_TRUE(lint_fixture("bad_nondeterminism.cc", only_parse).empty());
    LintConfig only_env;
    only_env.rules = {"banned-env-raw"};
    // ...and unused-suppression stays off under partial runs: a
    // suppression for a disabled rule is not "stale".
    EXPECT_TRUE(
        lint_fixture("bad_unused_suppression.cc", only_env).empty());
}

TEST(LintRules, CounterSyncChecksBothDirections)
{
    LintConfig config;
    config.doc_to_code = true;
    Linter l(config);
    l.set_counter_doc("tests/lint_corpus/counter_doc.md",
                      read_file(std::string(kCorpusDir) + "counter_doc.md"));
    l.add_file("tests/lint_corpus/bad_counter_sync.cc",
               read_file(std::string(kCorpusDir) + "bad_counter_sync.cc"));
    const std::vector<Finding> findings = l.finish();
    bool code_to_doc = false, doc_to_code = false;
    for (const Finding &f : findings) {
        ASSERT_EQ(f.rule, "counter-name-sync") << f.to_string();
        if (f.message.find("corpus.not_in_doc") != std::string::npos)
            code_to_doc = true;
        if (f.message.find("corpus.stale") != std::string::npos)
            doc_to_code = true;
    }
    EXPECT_TRUE(code_to_doc) << "used-but-undocumented name not reported";
    EXPECT_TRUE(doc_to_code) << "stale catalog entry not reported";
}

TEST(LintRules, SuppressionsAreHonoredAndUnusedOnesFlagged)
{
    EXPECT_TRUE(lint_fixture("ok_suppressed.cc").empty());
    const std::vector<Finding> findings =
        lint_fixture("bad_unused_suppression.cc");
    ASSERT_EQ(findings.size(), 1u) << render(findings);
    EXPECT_EQ(findings[0].rule, "unused-suppression");
    EXPECT_NE(findings[0].message.find("banned-raw-parse"),
              std::string::npos);
}

TEST(LintJson, ReportValidatesAndCarriesSchemaAndFindings)
{
    const std::vector<Finding> findings = lint_fixture("bad_raw_parse.cc");
    const std::string json = roboshape::lint::findings_to_json(findings);
    std::string error;
    EXPECT_TRUE(roboshape::obs::validate_json(json, &error)) << error;
    EXPECT_NE(json.find("roboshape.lint_report/1"), std::string::npos);
    EXPECT_NE(json.find("banned-raw-parse"), std::string::npos);
    EXPECT_NE(json.find("bad_raw_parse.cc"), std::string::npos);
    // Empty reports are still valid documents.
    const std::string empty = roboshape::lint::findings_to_json({});
    EXPECT_TRUE(roboshape::obs::validate_json(empty, &error)) << error;
}

TEST(LintCatalog, KnownRuleNamesRoundTrip)
{
    // The six invariant rules plus the unused-suppression meta-rule.
    EXPECT_EQ(roboshape::lint::rule_catalog().size(), 7u);
    for (const auto &info : roboshape::lint::rule_catalog())
        EXPECT_TRUE(roboshape::lint::is_known_rule(info.name));
    EXPECT_FALSE(roboshape::lint::is_known_rule("bugprone-branch-clone"));
    EXPECT_FALSE(roboshape::lint::is_known_rule(""));
}

TEST(LintTree, RepoFileCollectionExcludesTheCorpus)
{
    const std::vector<std::string> files =
        roboshape::lint::collect_repo_files(ROBOSHAPE_SOURCE_DIR);
    EXPECT_FALSE(files.empty());
    for (const std::string &f : files)
        EXPECT_EQ(f.find("tests/lint_corpus/"), std::string::npos) << f;
}

} // namespace
