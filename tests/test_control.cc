/**
 * @file
 * Tests for the iLQR trajectory optimizer — the paper's motivating
 * nonlinear-optimal-control workload.
 */

#include <gtest/gtest.h>

#include "control/ilqr.h"
#include "dynamics/aba.h"
#include "topology/parametric_robots.h"
#include "topology/robot_library.h"

namespace roboshape {
namespace control {
namespace {

using linalg::Vector;
using topology::RobotId;
using topology::RobotModel;
using topology::TopologyInfo;
using topology::build_robot;

IlqrProblem
reach_problem(const RobotModel &model, double target, std::size_t horizon)
{
    const std::size_t n = model.num_links();
    IlqrProblem p;
    p.q0 = Vector(n);
    p.qd0 = Vector(n);
    p.q_goal = Vector(n);
    for (std::size_t i = 0; i < n; ++i)
        p.q_goal[i] = target;
    p.horizon = horizon;
    return p;
}

TEST(Ilqr, CostDecreasesMonotonically)
{
    const RobotModel m = topology::make_serial_chain(3);
    const TopologyInfo topo(m);
    const IlqrResult r = solve_ilqr(m, topo, reach_problem(m, 0.3, 20));
    ASSERT_GE(r.cost_history.size(), 2u);
    for (std::size_t k = 1; k < r.cost_history.size(); ++k)
        EXPECT_LT(r.cost_history[k], r.cost_history[k - 1]) << k;
}

TEST(Ilqr, SolvesPendulumSwingTowardGoal)
{
    const RobotModel m = topology::make_serial_chain(1);
    const TopologyInfo topo(m);
    IlqrProblem p = reach_problem(m, 0.8, 40);
    p.dt = 0.02;
    IlqrOptions options;
    options.max_iterations = 80;
    const IlqrResult r = solve_ilqr(m, topo, p, options);

    // Final position approaches the goal.
    const double q_final = r.states.back()[0];
    EXPECT_NEAR(q_final, 0.8, 0.1);
    // And improves massively over the passive rollout.
    EXPECT_LT(r.final_cost(), 0.25 * r.cost_history.front());
}

TEST(Ilqr, TrajectoryIsDynamicallyConsistent)
{
    // The returned states must satisfy the true dynamics under the
    // returned controls (semi-implicit Euler).
    const RobotModel m = build_robot(RobotId::kIiwa);
    const TopologyInfo topo(m);
    IlqrProblem p = reach_problem(m, 0.2, 10);
    IlqrOptions options;
    options.max_iterations = 5;
    const IlqrResult r = solve_ilqr(m, topo, p, options);

    const std::size_t n = m.num_links();
    for (std::size_t k = 0; k < p.horizon; ++k) {
        Vector q(n), qd(n);
        for (std::size_t i = 0; i < n; ++i) {
            q[i] = r.states[k][i];
            qd[i] = r.states[k][n + i];
        }
        const Vector qdd = dynamics::aba(m, q, qd, r.controls[k]);
        for (std::size_t i = 0; i < n; ++i) {
            const double qd_next = qd[i] + p.dt * qdd[i];
            EXPECT_NEAR(r.states[k + 1][n + i], qd_next, 1e-9);
            EXPECT_NEAR(r.states[k + 1][i], q[i] + p.dt * qd_next, 1e-9);
        }
    }
}

TEST(Ilqr, TimingBreakdownIsAccounted)
{
    const RobotModel m = build_robot(RobotId::kHyq);
    const TopologyInfo topo(m);
    IlqrOptions options;
    options.max_iterations = 4;
    const IlqrResult r =
        solve_ilqr(m, topo, reach_problem(m, 0.2, 8), options);
    EXPECT_GT(r.timing.total_us, 0.0);
    EXPECT_GT(r.timing.linearization_us, 0.0);
    EXPECT_GT(r.timing.rollout_us, 0.0);
    EXPECT_GT(r.timing.backward_pass_us, 0.0);
    // Phases never exceed the total.
    EXPECT_LE(r.timing.linearization_us + r.timing.backward_pass_us +
                  r.timing.rollout_us,
              r.timing.total_us * 1.05);
    // The paper's motivating claim: gradients are a major share of the
    // solve (30-90% in the paper; timing noise on tiny solves allows a
    // little slack here — bench/control_bottleneck measures it properly).
    EXPECT_GT(r.timing.gradient_fraction(), 0.15);
    EXPECT_LT(r.timing.gradient_fraction(), 0.95);
}

TEST(Ilqr, CostFunctionMatchesManualSum)
{
    const RobotModel m = topology::make_serial_chain(2);
    IlqrProblem p = reach_problem(m, 0.5, 2);
    std::vector<Vector> xs(3, Vector(4));
    std::vector<Vector> us(2, Vector(2));
    xs[0] = Vector{0.1, 0.2, 0.0, 0.0};
    xs[1] = Vector{0.2, 0.3, 0.1, -0.1};
    xs[2] = Vector{0.5, 0.5, 0.0, 0.0};
    us[0] = Vector{1.0, -1.0};
    us[1] = Vector{0.5, 0.5};

    double expected = 0.0;
    for (int k = 0; k < 2; ++k) {
        for (int i = 0; i < 2; ++i) {
            const double eq = xs[k][i] - 0.5;
            expected += 0.5 * p.w_q * eq * eq +
                        0.5 * p.w_qd * xs[k][2 + i] * xs[k][2 + i] +
                        0.5 * p.w_u * us[k][i] * us[k][i];
        }
    }
    // Terminal: exactly at goal with zero velocity -> zero.
    EXPECT_NEAR(trajectory_cost(p, xs, us), expected, 1e-12);
}

} // namespace
} // namespace control
} // namespace roboshape
