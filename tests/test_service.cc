/**
 * @file
 * Tests of the roboshaped service stack (docs/SERVICE.md): the shared
 * strict numeric parser, the request-body JSON reader, the HTTP message
 * layer, the handler surface (driven without sockets), and live-socket
 * end-to-end round trips including concurrent cache sharing.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/parse_uint.h"
#include "net/http.h"
#include "net/socket.h"
#include "obs/json.h"
#include "obs/registry.h"
#include "obs/wall_trace.h"
#include "service/cache.h"
#include "service/flight_recorder.h"
#include "service/handlers.h"
#include "service/json_value.h"
#include "service/server.h"
#include "topology/robot_library.h"

namespace {

using namespace roboshape;

// ---------------------------------------------------------------------------
// core::parse_uint — the strict parser every CLI flag and env var uses.

TEST(ParseUint, AcceptsPlainDecimal)
{
    EXPECT_EQ(core::parse_uint("0"), 0u);
    EXPECT_EQ(core::parse_uint("7"), 7u);
    EXPECT_EQ(core::parse_uint("18446744073709551615"),
              std::numeric_limits<std::uint64_t>::max());
}

TEST(ParseUint, RejectsTrailingGarbage)
{
    // The std::stoul failure mode this replaces: "4abc" parsed as 4.
    EXPECT_FALSE(core::parse_uint("4abc"));
    EXPECT_FALSE(core::parse_uint("12 "));
    EXPECT_FALSE(core::parse_uint(" 12"));
    EXPECT_FALSE(core::parse_uint("1.5"));
    EXPECT_FALSE(core::parse_uint("0x10"));
}

TEST(ParseUint, RejectsSignsAndEmpty)
{
    // strtoull wraps "-1" to UINT64_MAX; here it is simply not a digit.
    EXPECT_FALSE(core::parse_uint("-1"));
    EXPECT_FALSE(core::parse_uint("+1"));
    EXPECT_FALSE(core::parse_uint(""));
    EXPECT_FALSE(core::parse_uint("abc"));
}

TEST(ParseUint, RejectsOverflow)
{
    EXPECT_FALSE(core::parse_uint("18446744073709551616")); // 2^64
    EXPECT_FALSE(core::parse_uint("99999999999999999999"));
}

TEST(ParseUint, EnforcesRange)
{
    EXPECT_EQ(core::parse_uint("4", 1, 8), 4u);
    EXPECT_FALSE(core::parse_uint("0", 1, 8));
    EXPECT_FALSE(core::parse_uint("9", 1, 8));
    EXPECT_EQ(core::parse_uint("8", 1, 8), 8u);
}

// ---------------------------------------------------------------------------
// service::parse_json — the request-body reader.

TEST(JsonValue, ParsesRequestShapedDocument)
{
    const auto doc = service::parse_json(
        R"({"robot": "iiwa", "max_pes_fwd": 4, "deep": {"list": [1, 2.5,)"
        R"( true, null, "x"]}})");
    ASSERT_TRUE(doc);
    ASSERT_TRUE(doc->is_object());
    EXPECT_EQ(doc->get_string("robot"), "iiwa");
    bool ok = true;
    EXPECT_EQ(doc->get_uint("max_pes_fwd", 1, 4096, ok), 4u);
    EXPECT_TRUE(ok);
    const service::JsonValue *deep = doc->find("deep");
    ASSERT_NE(deep, nullptr);
    const service::JsonValue *list = deep->find("list");
    ASSERT_NE(list, nullptr);
    ASSERT_EQ(list->as_array().size(), 5u);
    EXPECT_DOUBLE_EQ(list->as_array()[1].as_number(), 2.5);
    EXPECT_TRUE(list->as_array()[3].is_null());
}

TEST(JsonValue, DecodesEscapesIncludingSurrogatePairs)
{
    const auto doc = service::parse_json(
        R"({"s": "a\"b\\c\n\u0041\u00e9\ud83d\ude00"})");
    ASSERT_TRUE(doc);
    EXPECT_EQ(doc->get_string("s"),
              "a\"b\\c\nA\xC3\xA9\xF0\x9F\x98\x80");
}

TEST(JsonValue, RejectsMalformedDocuments)
{
    std::string error;
    EXPECT_FALSE(service::parse_json("", &error));
    EXPECT_FALSE(service::parse_json("{", &error));
    EXPECT_FALSE(service::parse_json("{}extra", &error));
    EXPECT_FALSE(service::parse_json("{\"a\": 01}", &error));
    EXPECT_FALSE(service::parse_json("{\"a\": 1,}", &error));
    EXPECT_FALSE(service::parse_json("{\"a\": nul}", &error));
    EXPECT_FALSE(service::parse_json("\"unpaired \\ud800\"", &error));
    EXPECT_FALSE(error.empty()); // failures carry a description
}

TEST(JsonValue, RejectsExcessNesting)
{
    std::string text;
    for (int i = 0; i < 80; ++i)
        text += '[';
    for (int i = 0; i < 80; ++i)
        text += ']';
    EXPECT_FALSE(service::parse_json(text));
}

TEST(JsonValue, GetUintDistinguishesAbsentFromMalformed)
{
    const auto doc = service::parse_json(
        R"({"str": "4", "frac": 1.5, "neg": -1, "big": 1e30, "ok": 3})");
    ASSERT_TRUE(doc);
    bool ok = true;
    EXPECT_FALSE(doc->get_uint("missing", 1, 10, ok));
    EXPECT_TRUE(ok); // absent is not an error
    EXPECT_FALSE(doc->get_uint("str", 1, 10, ok));
    EXPECT_FALSE(ok); // present but wrong type is
    ok = true;
    EXPECT_FALSE(doc->get_uint("frac", 1, 10, ok));
    EXPECT_FALSE(ok);
    ok = true;
    EXPECT_FALSE(doc->get_uint("neg", 1, 10, ok));
    EXPECT_FALSE(ok);
    ok = true;
    EXPECT_EQ(doc->get_uint("ok", 1, 10, ok), 3u);
    EXPECT_TRUE(ok);
}

// ---------------------------------------------------------------------------
// net: pure-buffer HTTP parsers.

TEST(Http, ParsesRequestHead)
{
    net::HttpRequest request;
    const auto result = net::parse_request_head(
        "POST /v1/sweep HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\n",
        request);
    ASSERT_EQ(result, net::ReadResult::kOk);
    EXPECT_EQ(request.method, "POST");
    EXPECT_EQ(request.target, "/v1/sweep");
    EXPECT_EQ(request.version, "HTTP/1.1");
    EXPECT_EQ(request.header("content-length"), "5"); // case-insensitive
    EXPECT_TRUE(request.keep_alive());
}

TEST(Http, KeepAliveSemantics)
{
    net::HttpRequest request;
    ASSERT_EQ(net::parse_request_head(
                  "GET / HTTP/1.1\r\nConnection: close\r\n\r\n", request),
              net::ReadResult::kOk);
    EXPECT_FALSE(request.keep_alive());
    ASSERT_EQ(net::parse_request_head("GET / HTTP/1.0\r\n\r\n", request),
              net::ReadResult::kOk);
    EXPECT_FALSE(request.keep_alive()); // 1.0 defaults to close
}

TEST(Http, RejectsMalformedAndUnsupported)
{
    net::HttpRequest request;
    EXPECT_EQ(net::parse_request_head("nonsense\r\n\r\n", request),
              net::ReadResult::kMalformed);
    EXPECT_EQ(net::parse_request_head("GET / HTTP/2.0\r\n\r\n", request),
              net::ReadResult::kUnsupported);
    EXPECT_EQ(net::parse_request_head("POST / HTTP/1.1\r\n"
                                      "Transfer-Encoding: chunked\r\n\r\n",
                                      request),
              net::ReadResult::kUnsupported);
}

TEST(Http, ResponseSerializeParseRoundTrip)
{
    net::HttpResponse out = net::json_response(200, "{\"a\":1}");
    out.set_header("X-Roboshape-Cache", "hit");
    const std::string wire = out.serialize(true);
    // Deterministic bodies: no Date or other time-varying headers.
    EXPECT_EQ(wire.find("Date:"), std::string::npos);

    net::HttpResponse in;
    std::size_t consumed = 0;
    ASSERT_TRUE(net::parse_response(wire, in, &consumed));
    EXPECT_EQ(consumed, wire.size());
    EXPECT_EQ(in.status, 200);
    EXPECT_EQ(in.body, "{\"a\":1}");
    EXPECT_EQ(in.header("x-roboshape-cache"), "hit");
}

// ---------------------------------------------------------------------------
// service: structural model hash.

TEST(ModelHash, StableAndDiscriminating)
{
    const auto iiwa = topology::build_robot(topology::RobotId::kIiwa);
    const auto iiwa2 = topology::build_robot(topology::RobotId::kIiwa);
    const auto hyq = topology::build_robot(topology::RobotId::kHyq);
    EXPECT_EQ(service::model_hash(iiwa), service::model_hash(iiwa2));
    EXPECT_NE(service::model_hash(iiwa), service::model_hash(hyq));
}

// ---------------------------------------------------------------------------
// service: handler surface, driven without sockets.

net::HttpRequest
post(const std::string &target, const std::string &body)
{
    net::HttpRequest request;
    request.method = "POST";
    request.target = target;
    request.version = "HTTP/1.1";
    request.body = body;
    return request;
}

net::HttpRequest
get(const std::string &target)
{
    net::HttpRequest request;
    request.method = "GET";
    request.target = target;
    request.version = "HTTP/1.1";
    return request;
}

TEST(Service, HealthzAndRobots)
{
    service::Service svc;
    const auto health = svc.handle(get("/healthz"));
    EXPECT_EQ(health.status, 200);
    EXPECT_TRUE(obs::validate_json(health.body));

    const auto robots = svc.handle(get("/v1/robots"));
    EXPECT_EQ(robots.status, 200);
    EXPECT_TRUE(obs::validate_json(robots.body));
    EXPECT_NE(robots.body.find("\"iiwa\""), std::string::npos);
}

TEST(Service, RejectsBadRequests)
{
    service::Service svc;
    EXPECT_EQ(svc.handle(post("/v1/sweep", "")).status, 400);
    EXPECT_EQ(svc.handle(post("/v1/sweep", "{nope")).status, 400);
    EXPECT_EQ(svc.handle(post("/v1/sweep", "[1,2]")).status, 400);
    EXPECT_EQ(svc.handle(post("/v1/sweep", R"({"bogus": 1})")).status, 400);
    EXPECT_EQ(
        svc.handle(post("/v1/sweep", R"({"robot": "x", "urdf": "y"})"))
            .status,
        400);
    EXPECT_EQ(svc.handle(post("/v1/sweep", R"({"robot": "marvin"})")).status,
              404);
    EXPECT_EQ(svc.handle(
                     post("/v1/sweep",
                          R"({"robot": "iiwa", "kernel": "quantum"})"))
                  .status,
              400);
    // Knob caps only exist on design/report.
    EXPECT_EQ(svc.handle(post("/v1/sweep",
                              R"({"robot": "iiwa", "max_pes_fwd": 2})"))
                  .status,
              400);
    EXPECT_EQ(svc.handle(post("/v1/design",
                              R"({"robot": "iiwa", "max_pes_fwd": 0})"))
                  .status,
              400);
    EXPECT_EQ(svc.handle(get("/v1/sweep")).status, 405);
    EXPECT_EQ(svc.handle(get("/nope")).status, 404);
    // Every error body is machine-readable JSON.
    EXPECT_TRUE(obs::validate_json(svc.handle(get("/nope")).body));
}

TEST(Service, ValidateReportsInsteadOfRejecting)
{
    service::Service svc;
    const auto good = svc.handle(post("/v1/validate", R"({"robot": "iiwa"})"));
    EXPECT_EQ(good.status, 200);
    EXPECT_TRUE(obs::validate_json(good.body));
    EXPECT_NE(good.body.find("\"ok\":true"), std::string::npos);

    // Malformed URDF is still a *successful* validation request.
    const auto bad = svc.handle(
        post("/v1/validate", R"({"urdf": "<robot name='x'><oops"})"));
    EXPECT_EQ(bad.status, 200);
    EXPECT_TRUE(obs::validate_json(bad.body));
    EXPECT_NE(bad.body.find("\"ok\":false"), std::string::npos);
    EXPECT_NE(bad.body.find("diagnostics"), std::string::npos);
}

TEST(Service, ComputeEndpointsRejectBadUrdfWith422)
{
    service::Service svc;
    const auto response = svc.handle(
        post("/v1/sweep", R"({"urdf": "<robot name='x'><oops"})"));
    EXPECT_EQ(response.status, 422);
    EXPECT_TRUE(obs::validate_json(response.body));
    EXPECT_NE(response.body.find("diagnostics"), std::string::npos);
}

TEST(Service, SweepCachesByteIdentically)
{
    service::Service svc;
    const auto cold = svc.handle(post("/v1/sweep", R"({"robot": "iiwa"})"));
    ASSERT_EQ(cold.status, 200);
    EXPECT_TRUE(obs::validate_json(cold.body));
    EXPECT_EQ(cold.header("X-Roboshape-Cache"), "miss");

    const auto hot = svc.handle(post("/v1/sweep", R"({"robot": "IIWA"})"));
    ASSERT_EQ(hot.status, 200);
    EXPECT_EQ(hot.header("X-Roboshape-Cache"), "hit");
    EXPECT_EQ(hot.body, cold.body); // byte-identical, case-folded name

    // A different kernel is a different cache entry, not a hit.
    const auto crba = svc.handle(
        post("/v1/sweep", R"({"robot": "iiwa", "kernel": "crba"})"));
    ASSERT_EQ(crba.status, 200);
    EXPECT_EQ(crba.header("X-Roboshape-Cache"), "miss");
    EXPECT_NE(crba.body, cold.body);
    EXPECT_EQ(svc.cache().size(), 2u);
}

TEST(Service, DesignClampsKnobsAndReportsPlatforms)
{
    service::Service svc;
    const auto response = svc.handle(post(
        "/v1/design",
        R"({"robot": "iiwa", "max_pes_fwd": 4096, "max_pes_bwd": 2})"));
    ASSERT_EQ(response.status, 200);
    EXPECT_TRUE(obs::validate_json(response.body));
    // iiwa has 7 links: the 4096 cap clamps to 7.
    EXPECT_NE(response.body.find("\"pes_fwd\":7"), std::string::npos);
    EXPECT_NE(response.body.find("\"pes_bwd\":2"), std::string::npos);
    EXPECT_NE(response.body.find("VCU118"), std::string::npos);
    EXPECT_NE(response.body.find("VC707"), std::string::npos);

    // Same knobs again: served from the body cache.
    const auto again = svc.handle(post(
        "/v1/design",
        R"({"robot": "iiwa", "max_pes_fwd": 4096, "max_pes_bwd": 2})"));
    EXPECT_EQ(again.header("X-Roboshape-Cache"), "hit");
    EXPECT_EQ(again.body, response.body);
}

TEST(Service, ReportEmitsRunReportSchema)
{
    service::Service svc;
    const auto response =
        svc.handle(post("/v1/report", R"({"robot": "hyq"})"));
    ASSERT_EQ(response.status, 200);
    EXPECT_TRUE(obs::validate_json(response.body));
    EXPECT_NE(response.body.find("roboshape.run_report/1"),
              std::string::npos);
}

// ---------------------------------------------------------------------------
// service: telemetry endpoints (driven without sockets).

TEST(Service, ClassifyEndpointCoversTheSurface)
{
    using service::Endpoint;
    EXPECT_EQ(service::classify_endpoint("/healthz"), Endpoint::kHealthz);
    EXPECT_EQ(service::classify_endpoint("/v1/robots"), Endpoint::kRobots);
    EXPECT_EQ(service::classify_endpoint("/v1/validate"),
              Endpoint::kValidate);
    EXPECT_EQ(service::classify_endpoint("/v1/sweep"), Endpoint::kSweep);
    EXPECT_EQ(service::classify_endpoint("/v1/design"), Endpoint::kDesign);
    EXPECT_EQ(service::classify_endpoint("/v1/report"), Endpoint::kReport);
    EXPECT_EQ(service::classify_endpoint("/metrics"), Endpoint::kMetrics);
    EXPECT_EQ(service::classify_endpoint("/v1/statz"), Endpoint::kStatz);
    EXPECT_EQ(service::classify_endpoint("/v1/debug/trace"),
              Endpoint::kDebug);
    EXPECT_EQ(service::classify_endpoint("/v1/debug/trace/42"),
              Endpoint::kDebug);
    EXPECT_EQ(service::classify_endpoint("/v1/debug/requests"),
              Endpoint::kDebug);
    EXPECT_EQ(service::classify_endpoint("/nope"), Endpoint::kOther);
    EXPECT_STREQ(service::endpoint_name(Endpoint::kDesign), "design");
    EXPECT_STREQ(service::endpoint_name(Endpoint::kOther), "other");
}

TEST(Service, MetricsServesPrometheusText)
{
    service::Service svc;
    // Populate at least one counter before scraping.
    ASSERT_EQ(svc.handle(post("/v1/sweep", R"({"robot": "iiwa"})")).status,
              200);
    const auto response = svc.handle(get("/metrics"));
    ASSERT_EQ(response.status, 200);
    const auto type = response.header("Content-Type");
    ASSERT_TRUE(type);
    EXPECT_NE(type->find("text/plain"), std::string::npos);
#ifndef ROBOSHAPE_NO_OBS
    // With instrumentation compiled out the registry may be empty; with
    // it in, the sweep above guarantees cache counters to scrape.
    EXPECT_NE(response.body.find("# TYPE"), std::string::npos);
    EXPECT_NE(response.body.find("roboshape_svc_cache_misses"),
              std::string::npos);
#endif
    // Deterministic ordering: two scrapes of a quiet registry agree on
    // the family ordering (values may move, names may not).
    const auto again = svc.handle(get("/metrics"));
    EXPECT_EQ(again.status, 200);

    EXPECT_EQ(svc.handle(post("/metrics", "")).status, 405);
}

TEST(Service, StatzDumpsTheRegistry)
{
    service::Service svc;
    ASSERT_EQ(svc.handle(post("/v1/sweep", R"({"robot": "iiwa"})")).status,
              200);
    const auto response = svc.handle(get("/v1/statz"));
    ASSERT_EQ(response.status, 200);
    std::string error;
    EXPECT_TRUE(obs::validate_json(response.body, &error)) << error;
    EXPECT_NE(response.body.find(service::kMetricsDumpSchema),
              std::string::npos);
    EXPECT_NE(response.body.find("\"git_sha\""), std::string::npos);
    EXPECT_NE(response.body.find("\"histograms\""), std::string::npos);
#ifndef ROBOSHAPE_NO_OBS
    EXPECT_NE(response.body.find("\"p99\""), std::string::npos);
#endif
    EXPECT_EQ(svc.handle(post("/v1/statz", "")).status, 405);
}

TEST(Service, DebugTraceTogglesAtRuntime)
{
    service::Service svc;
    obs::set_wall_trace_enabled(false);

    auto state = svc.handle(get("/v1/debug/trace"));
    ASSERT_EQ(state.status, 200);
    EXPECT_NE(state.body.find("false"), std::string::npos);

    const auto on =
        svc.handle(post("/v1/debug/trace", R"({"enabled": true})"));
    ASSERT_EQ(on.status, 200);
#ifndef ROBOSHAPE_NO_OBS
    EXPECT_TRUE(obs::wall_trace_enabled());
#endif
    state = svc.handle(get("/v1/debug/trace"));
#ifndef ROBOSHAPE_NO_OBS
    EXPECT_NE(state.body.find("true"), std::string::npos);
#endif

    const auto off =
        svc.handle(post("/v1/debug/trace", R"({"enabled": false})"));
    ASSERT_EQ(off.status, 200);
    EXPECT_FALSE(obs::wall_trace_enabled());

    // Strict body: unknown keys, wrong types, and non-objects are 400.
    EXPECT_EQ(svc.handle(post("/v1/debug/trace", "")).status, 400);
    EXPECT_EQ(svc.handle(post("/v1/debug/trace", R"({"enabled": 1})"))
                  .status,
              400);
    EXPECT_EQ(
        svc.handle(post("/v1/debug/trace", R"({"enabled": true, "x": 1})"))
            .status,
        400);
    // Unknown debug paths and bad trace ids.
    EXPECT_EQ(svc.handle(get("/v1/debug/nope")).status, 404);
    EXPECT_EQ(svc.handle(get("/v1/debug/trace/abc")).status, 400);
}

TEST(Service, DebugRequestsDumpIsValidJson)
{
    service::Service svc;
    const auto response = svc.handle(get("/v1/debug/requests"));
    ASSERT_EQ(response.status, 200);
    std::string error;
    EXPECT_TRUE(obs::validate_json(response.body, &error)) << error;
    EXPECT_NE(response.body.find(service::kRequestsDumpSchema),
              std::string::npos);
    EXPECT_NE(response.body.find("\"requests\""), std::string::npos);
}

TEST(FlightRecorder, KeepsTheLastNInOrder)
{
    service::FlightRecorder recorder;
    for (std::uint64_t i = 1; i <= service::kFlightRecorderCapacity + 10;
         ++i) {
        service::RequestRecord record;
        record.id = i;
        record.endpoint = "design";
        record.method = "POST";
        record.status = 200;
        recorder.record(record);
    }
    const auto records = recorder.snapshot();
    ASSERT_EQ(records.size(), service::kFlightRecorderCapacity);
    // Oldest-first, ending at the newest id.
    for (std::size_t i = 1; i < records.size(); ++i)
        EXPECT_EQ(records[i].id, records[i - 1].id + 1);
    EXPECT_EQ(records.back().id, service::kFlightRecorderCapacity + 10);
    EXPECT_EQ(recorder.total(), service::kFlightRecorderCapacity + 10);
}

// ---------------------------------------------------------------------------
// Live-socket end-to-end tests.

TEST(ServerE2E, EveryLibraryRobotRoundTrips)
{
    service::Service svc;
    service::ServerOptions options;
    options.port = 0;
    options.workers = 2;
    service::Server server(svc, options);
    ASSERT_TRUE(server.start()) << server.error();

    for (const auto &ids :
         {topology::all_robots(), topology::extended_robots()})
        for (topology::RobotId id : ids) {
            const std::string name = topology::robot_name(id);
            net::TcpConn conn = net::dial(server.port(), 5000);
            ASSERT_TRUE(conn.valid()) << name;
            std::string leftover;
            for (const char *target : {"/v1/validate", "/v1/design"}) {
                const auto response = net::roundtrip(
                    conn, post(target, "{\"robot\": \"" + name + "\"}"),
                    leftover, 30000);
                ASSERT_TRUE(response) << name << " " << target;
                EXPECT_EQ(response->status, 200) << name << " " << target;
                EXPECT_TRUE(obs::validate_json(response->body))
                    << name << " " << target;
            }
        }
    server.stop();
    EXPECT_FALSE(server.running());
}

TEST(ServerE2E, ConcurrentClientsShareTheCache)
{
    service::Service svc;
    service::ServerOptions options;
    options.port = 0;
    options.workers = 8;
    service::Server server(svc, options);
    ASSERT_TRUE(server.start()) << server.error();

#ifndef ROBOSHAPE_NO_OBS
    std::uint64_t hits_before = 0;
    for (const auto &c : obs::registry().counters())
        if (c.name == "svc.cache_hits")
            hits_before = c.value;
#endif

    // Single-client reference body first (the cold render).
    std::string reference;
    {
        net::TcpConn conn = net::dial(server.port(), 5000);
        ASSERT_TRUE(conn.valid());
        std::string leftover;
        const auto response = net::roundtrip(
            conn, post("/v1/sweep", R"({"robot": "baxter"})"), leftover,
            30000);
        ASSERT_TRUE(response);
        ASSERT_EQ(response->status, 200);
        reference = response->body;
    }

    constexpr std::size_t kThreads = 8;
    constexpr std::size_t kPerThread = 20;
    std::vector<std::size_t> mismatches(kThreads, 0);
    std::vector<std::thread> clients;
    for (std::size_t t = 0; t < kThreads; ++t)
        clients.emplace_back([&, t] {
            net::TcpConn conn = net::dial(server.port(), 5000);
            if (!conn.valid()) {
                mismatches[t] = kPerThread;
                return;
            }
            std::string leftover;
            for (std::size_t i = 0; i < kPerThread; ++i) {
                const auto response = net::roundtrip(
                    conn, post("/v1/sweep", R"({"robot": "baxter"})"),
                    leftover, 30000);
                if (!response || response->status != 200 ||
                    response->body != reference)
                    ++mismatches[t];
            }
        });
    for (std::thread &t : clients)
        t.join();
    server.stop();

    for (std::size_t t = 0; t < kThreads; ++t)
        EXPECT_EQ(mismatches[t], 0u) << "client " << t;

#ifndef ROBOSHAPE_NO_OBS
    std::uint64_t hits_after = 0;
    for (const auto &c : obs::registry().counters())
        if (c.name == "svc.cache_hits")
            hits_after = c.value;
    EXPECT_GT(hits_after, hits_before);
#endif
}

TEST(ServerE2E, OverloadShedsWith429)
{
    // One worker, queue capacity one.  An idle connection parks the
    // worker inside read_request (it blocks until request_timeout_ms), a
    // second idle connection fills the queue, so a third client MUST be
    // answered 429 by the accept thread — deterministically, no timing
    // races on how fast a "slow" request computes.
    service::Service svc;
    service::ServerOptions options;
    options.port = 0;
    options.workers = 1;
    options.queue_capacity = 1;
    options.request_timeout_ms = 3000;
    service::Server server(svc, options);
    ASSERT_TRUE(server.start()) << server.error();

    net::TcpConn parked = net::dial(server.port(), 5000);
    ASSERT_TRUE(parked.valid());
    // Let the worker dequeue it and block reading a request that never
    // comes; the queue is empty again afterwards.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));

    net::TcpConn queued = net::dial(server.port(), 5000);
    ASSERT_TRUE(queued.valid());
    std::this_thread::sleep_for(std::chrono::milliseconds(300));

    // Queue full, worker busy: this one is shed at admission.
    net::TcpConn probe = net::dial(server.port(), 5000);
    ASSERT_TRUE(probe.valid());
    std::string leftover;
    const auto response = net::roundtrip(probe, get("/healthz"), leftover,
                                         options.request_timeout_ms);
    ASSERT_TRUE(response);
    EXPECT_EQ(response->status, 429);
    EXPECT_TRUE(obs::validate_json(response->body));
    EXPECT_EQ(response->header("Connection"), "close");

    parked.close();
    queued.close();
    server.stop();
}

TEST(ServerE2E, RequestIdsEchoAndLandInTheFlightRecorder)
{
    service::Service svc;
    service::ServerOptions options;
    options.port = 0;
    options.workers = 2;
    service::Server server(svc, options);
    ASSERT_TRUE(server.start()) << server.error();

    net::TcpConn conn = net::dial(server.port(), 5000);
    ASSERT_TRUE(conn.valid());
    std::string leftover;
    std::vector<std::string> ids;
    for (int i = 0; i < 5; ++i) {
        const auto response =
            net::roundtrip(conn, get("/healthz"), leftover, 5000);
        ASSERT_TRUE(response);
        const auto id = response->header("X-Roboshape-Request-Id");
        ASSERT_TRUE(id);
        ids.emplace_back(*id);
    }
    // Ids on one keep-alive session are strictly increasing.
    for (std::size_t i = 1; i < ids.size(); ++i) {
        const auto prev = core::parse_uint(ids[i - 1]);
        const auto next = core::parse_uint(ids[i]);
        ASSERT_TRUE(prev && next);
        EXPECT_LT(*prev, *next);
    }

    const auto dump =
        net::roundtrip(conn, get("/v1/debug/requests"), leftover, 5000);
    ASSERT_TRUE(dump);
    ASSERT_EQ(dump->status, 200);
    std::string error;
    EXPECT_TRUE(obs::validate_json(dump->body, &error)) << error;
    // Every id appears, oldest first (the recorder preserves order).
    std::size_t last = 0;
    for (const std::string &id : ids) {
        const std::size_t at =
            dump->body.find("\"id\":" + id + ",", last);
        ASSERT_NE(at, std::string::npos) << id;
        last = at;
    }
    EXPECT_NE(dump->body.find("\"endpoint\":\"healthz\""),
              std::string::npos);
    server.stop();
}

TEST(ServerE2E, TracedRequestYieldsAChromeTrace)
{
    service::Service svc;
    service::ServerOptions options;
    options.port = 0;
    options.workers = 2;
    service::Server server(svc, options);
    ASSERT_TRUE(server.start()) << server.error();
    obs::set_wall_trace_enabled(false); // per-request tracing must not need it

    net::TcpConn conn = net::dial(server.port(), 5000);
    ASSERT_TRUE(conn.valid());
    std::string leftover;
    net::HttpRequest traced = post("/v1/design", R"({"robot": "iiwa"})");
    traced.headers.emplace_back("X-Roboshape-Trace", "1");
    const auto response = net::roundtrip(conn, traced, leftover, 30000);
    ASSERT_TRUE(response);
    ASSERT_EQ(response->status, 200);
    const auto id = response->header("X-Roboshape-Request-Id");
    ASSERT_TRUE(id);

    for (const std::string &target :
         {std::string("/v1/debug/trace/last"),
          "/v1/debug/trace/" + std::string(*id)}) {
        const auto dump = net::roundtrip(conn, get(target), leftover, 5000);
        ASSERT_TRUE(dump) << target;
        ASSERT_EQ(dump->status, 200) << target;
        std::string error;
        EXPECT_TRUE(obs::validate_json(dump->body, &error))
            << target << ": " << error;
        EXPECT_NE(dump->body.find("\"traceEvents\""), std::string::npos);
#ifndef ROBOSHAPE_NO_OBS
        // The handler span is always present; its events carry the id.
        EXPECT_NE(dump->body.find("svc.handle"), std::string::npos);
        EXPECT_NE(dump->body.find("\"req\": " + std::string(*id)),
                  std::string::npos);
#endif
    }
    // An untraced request must not disturb the vault.
    ASSERT_TRUE(net::roundtrip(conn, get("/healthz"), leftover, 5000));
    const auto still =
        net::roundtrip(conn, get("/v1/debug/trace/last"), leftover, 5000);
    ASSERT_TRUE(still);
    EXPECT_EQ(still->status, 200);
    server.stop();
    EXPECT_FALSE(obs::wall_trace_enabled());
}

TEST(ServerE2E, GracefulDrainFinishesInFlightAndFlushesTheAccessLog)
{
    const std::string log_path = "test_access_log.jsonl";
    std::remove(log_path.c_str());

    service::Service svc;
    service::ServerOptions options;
    options.port = 0;
    options.workers = 2;
    options.access_log_path = log_path;
    options.slow_ms = 1; // sweeps take > 1 ms: exercises the slow flag
    service::Server server(svc, options);
    ASSERT_TRUE(server.start()) << server.error();
    const std::uint16_t port = server.port();

    // A cold /v1/sweep on a big robot is genuinely in flight while the
    // main thread calls stop() below.
    std::optional<net::HttpResponse> slow_response;
    std::thread client([&] {
        net::TcpConn conn = net::dial(port, 5000);
        if (!conn.valid())
            return;
        std::string leftover;
        const auto response = net::roundtrip(
            conn, post("/v1/sweep", R"({"robot": "humanoid"})"), leftover,
            30000);
        if (response)
            slow_response = *response;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    // stop() must let the in-flight sweep finish and answer.
    server.stop();
    client.join();
    ASSERT_TRUE(slow_response) << "in-flight request was dropped";
    EXPECT_EQ(slow_response->status, 200);
    EXPECT_TRUE(obs::validate_json(slow_response->body));

    // New connections are refused once stopped.
    net::TcpConn refused = net::dial(port, 500);
    if (refused.valid()) {
        std::string leftover;
        EXPECT_FALSE(
            net::roundtrip(refused, get("/healthz"), leftover, 1000));
    }

    // The access log was flushed: one JSON line per request, fields in
    // the documented order, the slow sweep flagged.
    std::ifstream log(log_path);
    ASSERT_TRUE(log.good());
    std::string line;
    std::size_t lines = 0;
    bool saw_slow_sweep = false;
    while (std::getline(log, line)) {
        ++lines;
        std::string error;
        EXPECT_TRUE(obs::validate_json(line, &error)) << error;
        EXPECT_EQ(line.rfind("{\"id\":", 0), 0u) << line;
        EXPECT_LT(line.find("\"endpoint\""), line.find("\"status\""));
        EXPECT_LT(line.find("\"status\""), line.find("\"handle_us\""));
        if (line.find("\"endpoint\":\"sweep\"") != std::string::npos &&
            line.find("\"slow\":true") != std::string::npos)
            saw_slow_sweep = true;
    }
    EXPECT_EQ(lines, 1u);
    EXPECT_TRUE(saw_slow_sweep);
    std::remove(log_path.c_str());
}

} // namespace
