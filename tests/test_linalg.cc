/**
 * @file
 * Unit tests for the dense linear-algebra substrate.
 */

#include <gtest/gtest.h>

#include "linalg/blocked.h"
#include "linalg/factorization.h"
#include "linalg/matrix.h"
#include "linalg/random.h"

namespace roboshape {
namespace linalg {
namespace {

TEST(Vector, ArithmeticAndNorms)
{
    Vector a{1.0, 2.0, 3.0};
    Vector b{4.0, -5.0, 6.0};
    Vector c = a + b;
    EXPECT_DOUBLE_EQ(c[0], 5.0);
    EXPECT_DOUBLE_EQ(c[1], -3.0);
    EXPECT_DOUBLE_EQ(c[2], 9.0);
    EXPECT_DOUBLE_EQ(a.dot(b), 4.0 - 10.0 + 18.0);
    EXPECT_DOUBLE_EQ((a * 2.0)[2], 6.0);
    EXPECT_DOUBLE_EQ(Vector({3.0, 4.0}).norm(), 5.0);
    EXPECT_DOUBLE_EQ(b.max_abs(), 6.0);
}

TEST(Matrix, IdentityAndResize)
{
    Matrix m = Matrix::identity(4);
    EXPECT_EQ(m.rows(), 4u);
    EXPECT_DOUBLE_EQ(m(2, 2), 1.0);
    EXPECT_DOUBLE_EQ(m(2, 1), 0.0);
    m.resize(2, 3);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(Matrix, ProductAgainstHandComputed)
{
    Matrix a(2, 3);
    a(0, 0) = 1;
    a(0, 1) = 2;
    a(0, 2) = 3;
    a(1, 0) = 4;
    a(1, 1) = 5;
    a(1, 2) = 6;
    Matrix b(3, 2);
    b(0, 0) = 7;
    b(0, 1) = 8;
    b(1, 0) = 9;
    b(1, 1) = 10;
    b(2, 0) = 11;
    b(2, 1) = 12;
    Matrix c = a * b;
    EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
    EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
    EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(Matrix, TransposeInvolution)
{
    Matrix a = random_matrix(5, 3, 11);
    EXPECT_NEAR(max_abs_diff(a.transposed().transposed(), a), 0.0, 0.0);
}

TEST(Matrix, MatrixVectorAgreesWithMatrixMatrix)
{
    Matrix a = random_matrix(6, 6, 3);
    Vector x = random_vector(6, 4);
    Matrix xm(6, 1);
    for (std::size_t i = 0; i < 6; ++i)
        xm(i, 0) = x[i];
    const Vector y = a * x;
    const Matrix ym = a * xm;
    for (std::size_t i = 0; i < 6; ++i)
        EXPECT_NEAR(y[i], ym(i, 0), 1e-12);
}

TEST(Matrix, BlockReadWriteRoundTrip)
{
    Matrix a = random_matrix(6, 6, 5);
    Matrix b = a.block(1, 2, 3, 4);
    EXPECT_DOUBLE_EQ(b(0, 0), a(1, 2));
    EXPECT_DOUBLE_EQ(b(2, 3), a(3, 5));
    Matrix c(6, 6);
    c.set_block(1, 2, b);
    EXPECT_NEAR(max_abs_diff(c.block(1, 2, 3, 4), b), 0.0, 0.0);
}

TEST(Matrix, SymmetryAndSparsityQueries)
{
    Matrix s = random_spd_matrix(5, 9);
    EXPECT_TRUE(s.is_symmetric());
    s(0, 1) += 1.0;
    EXPECT_FALSE(s.is_symmetric());

    Matrix z(4, 4);
    z(0, 0) = 1.0;
    EXPECT_EQ(z.count_zeros(), 15u);
    EXPECT_DOUBLE_EQ(z.sparsity(), 15.0 / 16.0);
}

TEST(Ldlt, SolveRecoversKnownSolution)
{
    const Matrix a = random_spd_matrix(8, 21);
    const Vector x_true = random_vector(8, 22);
    const Vector b = a * x_true;
    Ldlt f(a);
    ASSERT_TRUE(f.ok());
    const Vector x = f.solve(b);
    EXPECT_LT(max_abs_diff(x, x_true), 1e-9);
}

TEST(Ldlt, InverseTimesMatrixIsIdentity)
{
    const Matrix a = random_spd_matrix(7, 33);
    Ldlt f(a);
    ASSERT_TRUE(f.ok());
    const Matrix id = a * f.inverse();
    EXPECT_LT(max_abs_diff(id, Matrix::identity(7)), 1e-9);
}

TEST(Ldlt, RejectsIndefiniteMatrix)
{
    Matrix a = Matrix::identity(3);
    a(1, 1) = -2.0;
    EXPECT_FALSE(Ldlt(a).ok());
}

TEST(Ldlt, FactorsReassembleTheMatrix)
{
    const Matrix a = random_spd_matrix(6, 44);
    Ldlt f(a);
    ASSERT_TRUE(f.ok());
    Matrix d(6, 6);
    for (std::size_t i = 0; i < 6; ++i)
        d(i, i) = f.d()[i];
    const Matrix rebuilt = f.l() * d * f.l().transposed();
    EXPECT_LT(max_abs_diff(rebuilt, a), 1e-9);
}

TEST(Llt, AgreesWithLdltAndReassembles)
{
    const Matrix a = random_spd_matrix(8, 61);
    Llt llt(a);
    Ldlt ldlt(a);
    ASSERT_TRUE(llt.ok());
    const Vector b = random_vector(8, 62);
    EXPECT_LT(max_abs_diff(llt.solve(b), ldlt.solve(b)), 1e-9);
    EXPECT_LT(max_abs_diff(llt.l() * llt.l().transposed(), a), 1e-9);
}

TEST(Llt, RejectsIndefiniteMatrix)
{
    Matrix a = Matrix::identity(3);
    a(2, 2) = -1.0;
    EXPECT_FALSE(Llt(a).ok());
}

TEST(Lu, AgreesWithLdltOnSpdMatrices)
{
    const Matrix a = random_spd_matrix(9, 55);
    Ldlt ldlt(a);
    Lu lu(a);
    ASSERT_TRUE(ldlt.ok());
    ASSERT_TRUE(lu.ok());
    EXPECT_LT(max_abs_diff(ldlt.inverse(), lu.inverse()), 1e-8);
}

TEST(Lu, HandlesPermutationRequiringPivoting)
{
    Matrix a(3, 3);
    a(0, 1) = 1.0; // zero on the leading diagonal forces a pivot
    a(1, 0) = 2.0;
    a(2, 2) = 3.0;
    Lu lu(a);
    ASSERT_TRUE(lu.ok());
    const Vector x = lu.solve(Vector{2.0, 4.0, 9.0});
    EXPECT_NEAR(x[0], 2.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
    EXPECT_NEAR(x[2], 3.0, 1e-12);
}

TEST(Lu, SingularMatrixDetected)
{
    Matrix a(2, 2);
    a(0, 0) = 1.0;
    a(0, 1) = 2.0;
    a(1, 0) = 2.0;
    a(1, 1) = 4.0;
    EXPECT_FALSE(Lu(a).ok());
    EXPECT_DOUBLE_EQ(Lu(a).determinant(), 0.0);
}

TEST(Lu, DeterminantOfKnownMatrix)
{
    Matrix a(2, 2);
    a(0, 0) = 3.0;
    a(0, 1) = 1.0;
    a(1, 0) = 2.0;
    a(1, 1) = 5.0;
    EXPECT_NEAR(Lu(a).determinant(), 13.0, 1e-12);
}

TEST(BlockDiagonalInverse, MatchesDenseInverse)
{
    // Assemble a block-diagonal SPD matrix with spans 3, 2, 4.
    Matrix a(9, 9);
    a.set_block(0, 0, random_spd_matrix(3, 1));
    a.set_block(3, 3, random_spd_matrix(2, 2));
    a.set_block(5, 5, random_spd_matrix(4, 3));
    const std::vector<std::pair<std::size_t, std::size_t>> spans{
        {0, 3}, {3, 5}, {5, 9}};
    const Matrix bi = block_diagonal_inverse(a, spans);
    const Matrix di = spd_inverse(a);
    EXPECT_LT(max_abs_diff(bi, di), 1e-9);
}

TEST(BlockPattern, HandcraftedMask)
{
    // 5x5 matrix with a dense 2x2 top-left corner and one entry at (4, 4).
    Matrix m(5, 5);
    m(0, 0) = m(0, 1) = m(1, 0) = m(1, 1) = 1.0;
    m(4, 4) = 2.0;
    BlockPattern p(m, 2);
    EXPECT_EQ(p.block_rows(), 3u);
    EXPECT_EQ(p.block_cols(), 3u);
    EXPECT_TRUE(p.nonzero(0, 0));
    EXPECT_FALSE(p.nonzero(0, 1));
    EXPECT_TRUE(p.nonzero(2, 2));
    EXPECT_EQ(p.nonzero_blocks(), 2u);
    EXPECT_EQ(p.zero_blocks(), 7u);
    // Tile (2,2) covers only element (4,4) of the matrix; 3 of its 4 slots
    // are padding.
    EXPECT_EQ(p.padded_zero_elements(), 3u);
}

TEST(BlockPattern, BlockSizeOneHasNoPadding)
{
    const Matrix m = random_matrix(7, 7, 77);
    BlockPattern p(m, 1);
    EXPECT_EQ(p.nonzero_blocks(), 49u);
    EXPECT_EQ(p.padded_zero_elements(), 0u);
}

TEST(BlockPattern, AsciiRendering)
{
    Matrix m(2, 2);
    m(0, 0) = 1.0;
    BlockPattern p(m, 1);
    EXPECT_EQ(p.to_ascii(), "X.\n..\n");
}

/** Blocked multiply must equal dense multiply for any block size. */
class BlockedMultiplyEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(BlockedMultiplyEquivalence, MatchesDenseProduct)
{
    const int n = std::get<0>(GetParam());
    const int block = std::get<1>(GetParam());
    // Build a limb-sparse matrix: zero out a corner block to mimic mass-
    // matrix structure.
    Matrix a = random_matrix(n, n, 100 + n);
    for (int i = n / 2; i < n; ++i)
        for (int j = 0; j < n / 2; ++j)
            a(i, j) = a(j, i) = 0.0;
    const Matrix b = random_matrix(n, n, 200 + n);

    BlockMultiplyStats stats;
    const Matrix blocked = blocked_multiply(a, b, block, &stats);
    const Matrix dense = a * b;
    EXPECT_LT(max_abs_diff(blocked, dense), 1e-10)
        << "n=" << n << " block=" << block;
    EXPECT_GT(stats.block_macs, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndBlocks, BlockedMultiplyEquivalence,
    ::testing::Combine(::testing::Values(5, 7, 12, 15, 19),
                       ::testing::Values(1, 2, 3, 4, 5, 6, 7, 10)));

TEST(BlockedMultiply, SkipsZeroBlocks)
{
    // Block-diagonal matrix: off-diagonal tile products must be NOPs.
    Matrix a(6, 6);
    a.set_block(0, 0, random_matrix(3, 3, 1));
    a.set_block(3, 3, random_matrix(3, 3, 2));
    const Matrix b = random_matrix(6, 6, 3);
    BlockMultiplyStats stats;
    blocked_multiply(a, b, 3, &stats);
    // A has 2 nonzero tiles of 4; B dense (4 tiles). Products: 2x2x2 = 8
    // total tile triples, of which a zero A-tile kills 4.
    EXPECT_EQ(stats.block_nops, 4u);
    EXPECT_EQ(stats.block_macs, 4u);
}

TEST(BlockedMultiply, RectangularOperands)
{
    const Matrix a = random_matrix(7, 12, 5);
    const Matrix b = random_matrix(12, 4, 6);
    const Matrix blocked = blocked_multiply(a, b, 5);
    EXPECT_LT(max_abs_diff(blocked, a * b), 1e-10);
}

TEST(RandomHelpers, Deterministic)
{
    EXPECT_EQ(max_abs_diff(random_matrix(4, 4, 9), random_matrix(4, 4, 9)),
              0.0);
    EXPECT_NE(max_abs_diff(random_matrix(4, 4, 9), random_matrix(4, 4, 10)),
              0.0);
}

TEST(RandomHelpers, SpdIsActuallySpd)
{
    for (std::uint32_t seed = 0; seed < 8; ++seed)
        EXPECT_TRUE(Ldlt(random_spd_matrix(6, seed)).ok()) << seed;
}

} // namespace
} // namespace linalg
} // namespace roboshape
