/**
 * @file
 * Tests for the kernel-generality layer (paper Table 1): CRBA and
 * forward-kinematics accelerators built from the same patterns, plus the
 * power model, multicore throughput planning, and scheduler/blocking
 * ablation knobs.
 */

#include <gtest/gtest.h>

#include "accel/kernel_sim.h"
#include "accel/power_model.h"
#include "core/throughput.h"
#include "dynamics/crba.h"
#include "dynamics/fd_derivatives.h"
#include "dynamics/kinematics.h"
#include "accel/functional_sim.h"
#include "dynamics/robot_state.h"
#include "topology/parametric_robots.h"
#include "topology/robot_library.h"

namespace roboshape {
namespace accel {
namespace {

using dynamics::RobotState;
using dynamics::random_state;
using sched::KernelKind;
using topology::RobotId;
using topology::RobotModel;
using topology::TopologyInfo;
using topology::all_robots;
using topology::build_robot;
using topology::robot_name;

std::string
robot_param_name(const ::testing::TestParamInfo<RobotId> &info)
{
    std::string name = robot_name(info.param);
    for (char &c : name)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return name;
}

// -------------------------------------------------------- task graphs ----

TEST(KernelGraphs, MassMatrixTaskCounts)
{
    for (RobotId id : all_robots()) {
        const RobotModel m = build_robot(id);
        const TopologyInfo topo(m);
        const sched::TaskGraph g(topo, KernelKind::kMassMatrix);
        const std::size_t n = m.num_links();
        EXPECT_EQ(g.tasks_of_type(sched::TaskType::kRneaForward).size(), n);
        EXPECT_EQ(g.tasks_of_type(sched::TaskType::kRneaBackward).size(),
                  n);
        // One walk task per (column, ancestor-or-self) pair: sum of depths.
        std::size_t expected = 0;
        for (std::size_t i = 0; i < n; ++i)
            expected += topo.depth(i);
        EXPECT_EQ(g.tasks_of_type(sched::TaskType::kGradBackward).size(),
                  expected)
            << robot_name(id);
        EXPECT_TRUE(
            g.tasks_of_type(sched::TaskType::kGradForward).empty());
    }
}

TEST(KernelGraphs, ForwardKinematicsTaskCounts)
{
    const RobotModel m = build_robot(RobotId::kBaxter);
    const TopologyInfo topo(m);
    const sched::TaskGraph g(topo, KernelKind::kForwardKinematics);
    EXPECT_EQ(g.tasks_of_type(sched::TaskType::kRneaForward).size(), 15u);
    EXPECT_EQ(g.tasks_of_type(sched::TaskType::kGradForward).size(), 15u);
    EXPECT_TRUE(g.tasks_of_type(sched::TaskType::kRneaBackward).empty());
    EXPECT_TRUE(g.tasks_of_type(sched::TaskType::kGradBackward).empty());
}

TEST(KernelGraphs, SchedulesAreValidForAllKernels)
{
    for (RobotId id : all_robots()) {
        const RobotModel m = build_robot(id);
        const TopologyInfo topo(m);
        for (KernelKind kernel : sched::all_kernels()) {
            const sched::TaskGraph g(topo, kernel);
            const sched::TaskTiming timing{6, 4, 9, 5};
            const auto joint = sched::schedule_pipelined(g, 3, 3, timing);
            EXPECT_EQ(validate_schedule(g, joint), "")
                << robot_name(id) << " " << to_string(kernel);
        }
    }
}

// ------------------------------------------------- kernel simulators ----

class MassMatrixKernel : public ::testing::TestWithParam<RobotId>
{
};

TEST_P(MassMatrixKernel, SimulatorMatchesCrba)
{
    const RobotModel m = build_robot(GetParam());
    const RobotState s = random_state(m, 41);
    const AcceleratorDesign design(m, {3, 3, 1}, default_timing(),
                                   KernelKind::kMassMatrix);
    for (SimOrder order : {SimOrder::kStaged, SimOrder::kPipelined}) {
        const MassMatrixSimResult sim =
            simulate_mass_matrix(design, s.q, order);
        EXPECT_LT(linalg::max_abs_diff(sim.mass, dynamics::crba(m, s.q)),
                  1e-10);
        EXPECT_EQ(sim.tasks_executed, design.task_graph().size());
    }
}

INSTANTIATE_TEST_SUITE_P(Robots, MassMatrixKernel,
                         ::testing::ValuesIn(all_robots()),
                         robot_param_name);

class KinematicsKernel : public ::testing::TestWithParam<RobotId>
{
};

TEST_P(KinematicsKernel, SimulatorMatchesHostKinematics)
{
    const RobotModel m = build_robot(GetParam());
    const RobotState s = random_state(m, 43);
    const AcceleratorDesign design(m, {4, 1, 1}, default_timing(),
                                   KernelKind::kForwardKinematics);
    const KinematicsSimResult sim =
        simulate_forward_kinematics(design, s.q, s.qd);

    const auto fk = dynamics::forward_kinematics(m, s.q);
    const auto vel = dynamics::link_velocities(m, s.q, s.qd);
    for (std::size_t i = 0; i < m.num_links(); ++i) {
        EXPECT_LT((sim.base_to_link[i].to_matrix() -
                   fk.base_to_link[i].to_matrix())
                      .max_abs(),
                  1e-10);
        EXPECT_LT((sim.velocities[i] - vel[i]).max_abs(), 1e-10);
        EXPECT_LT(linalg::max_abs_diff(
                      sim.jacobians[i],
                      dynamics::link_jacobian(m, s.q, i)),
                  1e-10);
    }
}

INSTANTIATE_TEST_SUITE_P(Robots, KinematicsKernel,
                         ::testing::ValuesIn(all_robots()),
                         robot_param_name);

TEST(KernelSim, MassMatrixHazardCheckerRejectsReversedOrder)
{
    // The CRBA schedule run backwards starts with a force walk whose
    // composite inertias were never set up — the checker must fire, on the
    // legacy simulator and at engine compile time alike.
    const RobotModel m = build_robot(RobotId::kHyq);
    const RobotState s = random_state(m, 5);
    const AcceleratorDesign design(m, {3, 3, 1}, default_timing(),
                                   KernelKind::kMassMatrix);
    EXPECT_THROW(simulate_mass_matrix(design, s.q,
                                      SimOrder::kAdversarialReversed),
                 DataHazardError);
}

TEST(KernelSim, KinematicsHazardCheckerRejectsReversedOrder)
{
    // Reversed kinematics visits a leaf Jacobian before any pose exists.
    const RobotModel m = build_robot(RobotId::kHyq);
    const RobotState s = random_state(m, 5);
    const AcceleratorDesign design(m, {4, 1, 1}, default_timing(),
                                   KernelKind::kForwardKinematics);
    EXPECT_THROW(simulate_forward_kinematics(
                     design, s.q, s.qd, SimOrder::kAdversarialReversed),
                 DataHazardError);
}

TEST(KernelSim, RejectsKernelMismatch)
{
    const RobotModel m = build_robot(RobotId::kIiwa);
    const RobotState s = random_state(m, 1);
    const AcceleratorDesign gradient(m, {2, 2, 2});
    EXPECT_THROW(simulate_mass_matrix(gradient, s.q), std::logic_error);
    EXPECT_THROW(simulate_forward_kinematics(gradient, s.q, s.qd),
                 std::logic_error);
}

TEST(KernelDesigns, NonGradientKernelsHaveNoMultiplyStage)
{
    const RobotModel m = build_robot(RobotId::kHyq);
    const AcceleratorDesign crba_design(m, {3, 3, 1}, default_timing(),
                                        KernelKind::kMassMatrix);
    EXPECT_EQ(crba_design.block_multiply().makespan, 0);
    const AcceleratorDesign fk_design(m, {3, 3, 1}, default_timing(),
                                      KernelKind::kForwardKinematics);
    EXPECT_EQ(fk_design.block_multiply().makespan, 0);
    // Kinematics is forward-only: the backward stage is empty.
    EXPECT_EQ(fk_design.backward_stage().makespan, 0);
    EXPECT_GT(fk_design.forward_stage().makespan, 0);
}

TEST(KernelSim, ParametricRobotsRunThroughEveryKernel)
{
    // Sim equivalence for a prismatic gantry, a star, and a tree — the
    // robots outside the paper's six.
    for (const RobotModel &m :
         {topology::make_gantry(3), topology::make_star(5, 4),
          topology::make_branching_tree(3, 2)}) {
        const TopologyInfo topo(m);
        const RobotState s = random_state(m, 61);
        // Mass matrix kernel.
        const AcceleratorDesign crba_design(m, {2, 3, 1}, default_timing(),
                                            KernelKind::kMassMatrix);
        const auto crba_sim = simulate_mass_matrix(crba_design, s.q);
        EXPECT_LT(linalg::max_abs_diff(crba_sim.mass,
                                       dynamics::crba(m, s.q)),
                  1e-9)
            << m.name();
        // Gradient kernel.
        const auto ref = dynamics::forward_dynamics_gradients(
            m, topo, s.q, s.qd, s.tau);
        const AcceleratorDesign grad_design(m, {3, 3, 2});
        const auto grad_sim =
            simulate(grad_design, s.q, s.qd, ref.qdd, ref.mass_inv);
        EXPECT_LT(linalg::max_abs_diff(grad_sim.dqdd_dq, ref.dqdd_dq),
                  1e-9)
            << m.name();
    }
}

// ------------------------------------------------------- power model ----

TEST(PowerModel, UtilizationIsAFraction)
{
    const RobotModel m = build_robot(RobotId::kBaxter);
    const AcceleratorDesign d(m, {4, 4, 4});
    const PowerReport r = estimate_power(d);
    EXPECT_GT(r.mean_pe_utilization, 0.0);
    EXPECT_LE(r.mean_pe_utilization, 1.0);
    for (double u : r.forward_utilization) {
        EXPECT_GE(u, 0.0);
        EXPECT_LE(u, 1.0);
    }
    EXPECT_EQ(r.forward_utilization.size(), 4u);
    EXPECT_EQ(r.backward_utilization.size(), 4u);
}

TEST(PowerModel, GatingAlwaysSavesEnergy)
{
    for (RobotId id : all_robots()) {
        const RobotModel m = build_robot(id);
        const AcceleratorDesign d(m, {3, 3, 3});
        const PowerReport r = estimate_power(d);
        EXPECT_LT(r.energy_gated_uj, r.energy_uj) << robot_name(id);
        EXPECT_GT(r.gating_savings(), 0.0) << robot_name(id);
        EXPECT_LT(r.gating_savings(), 1.0) << robot_name(id);
    }
}

TEST(PowerModel, OverprovisionedDesignsGainMoreFromGating)
{
    // A 7-PE iiwa design idles far more than a 1-PE design, so gating
    // reclaims a larger fraction.
    const RobotModel m = build_robot(RobotId::kIiwa);
    const PowerReport wide = estimate_power(AcceleratorDesign(m, {7, 7, 4}));
    const PowerReport narrow =
        estimate_power(AcceleratorDesign(m, {1, 1, 4}));
    EXPECT_GT(wide.gating_savings(), narrow.gating_savings());
    EXPECT_GT(narrow.mean_pe_utilization, wide.mean_pe_utilization);
}

// -------------------------------------------------------- throughput ----

TEST(Throughput, MulticorePlanFitsBudget)
{
    const RobotModel m = build_robot(RobotId::kHyq);
    const AcceleratorDesign d(m, {3, 3, 6});
    const auto plan = core::plan_multicore(d, vcu118());
    EXPECT_GE(plan.cores, 1u);
    EXPECT_LE(plan.lut_utilization, kUtilizationThreshold + 1e-9);
    EXPECT_LE(plan.dsp_utilization, kUtilizationThreshold + 1e-9);
    EXPECT_GT(plan.throughput_per_s, 0.0);
}

TEST(Throughput, SmallerDesignsReplicateMore)
{
    const RobotModel m = build_robot(RobotId::kIiwa);
    const AcceleratorDesign big(m, {7, 7, 7});
    const AcceleratorDesign small(m, {2, 2, 3});
    EXPECT_GT(core::plan_multicore(small, vcu118()).cores,
              core::plan_multicore(big, vcu118()).cores);
}

TEST(Throughput, InfeasibleDesignYieldsZeroCores)
{
    const RobotModel m = topology::make_star(8, 16); // 128 links
    const AcceleratorDesign d(m, {8, 8, 4});
    EXPECT_EQ(core::plan_multicore(d, vc707()).cores, 0u);
}

// ------------------------------------------------- scheduler ablation ----

TEST(SchedulerOptions, LongestThreadBeatsFifoInAggregate)
{
    // Individual robots can exhibit classic list-scheduling anomalies, but
    // across the fleet the longest-thread priority must not lose to FIFO
    // dispatch, and every FIFO schedule must still be valid.
    std::int64_t smart_total = 0, fifo_total = 0;
    for (RobotId id : all_robots()) {
        const RobotModel m = build_robot(id);
        const TopologyInfo topo(m);
        const sched::TaskGraph g(topo);
        const sched::TaskTiming timing{6, 4, 9, 5};
        const sched::SchedulerOptions fifo{false, true};
        const auto smart = sched::schedule_pipelined(g, 3, 3, timing);
        const auto dumb = sched::schedule_pipelined(g, 3, 3, timing, fifo);
        EXPECT_EQ(validate_schedule(g, dumb), "") << robot_name(id);
        smart_total += smart.makespan;
        fifo_total += dumb.makespan;
    }
    EXPECT_LE(smart_total, fifo_total);
}

TEST(SchedulerOptions, AffinityReducesCheckpointRestores)
{
    // On a limb-rich robot, disabling thread affinity must not reduce the
    // number of checkpoint restores.
    const RobotModel m = topology::make_star(6, 6);
    const TopologyInfo topo(m);
    const sched::TaskGraph g(topo);
    const sched::TaskTiming unit{1, 1, 1, 1};
    const sched::SchedulerOptions no_affinity{true, false};
    const auto with = sched::schedule_stage(
        g, {sched::TaskType::kRneaForward, sched::TaskType::kGradForward},
        3, unit);
    const auto without = sched::schedule_stage(
        g, {sched::TaskType::kRneaForward, sched::TaskType::kGradForward},
        3, unit, no_affinity);
    EXPECT_LE(with.checkpoint_restores, without.checkpoint_restores);
}

TEST(BlockSchedule, DisablingNopSkippingCostsCycles)
{
    const RobotModel m = build_robot(RobotId::kHyq);
    const TopologyInfo topo(m);
    const auto a = sched::mass_inverse_mask(topo);
    const auto b = sched::derivative_mask(topo);
    const sched::TileTiming timing{1, 3};
    const auto sparse =
        sched::schedule_block_multiply(a, b, 3, 3, timing, 2, true);
    const auto dense =
        sched::schedule_block_multiply(a, b, 3, 3, timing, 2, false);
    EXPECT_LT(sparse.makespan, dense.makespan);
    EXPECT_EQ(dense.nop_tiles, 0u);
    EXPECT_GT(sparse.nop_tiles, 0u);
}

} // namespace
} // namespace accel
} // namespace roboshape
