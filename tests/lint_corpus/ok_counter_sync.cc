// Fixture: counters the catalog lists, plus the exempt test. prefix.
#include "obs/registry.h"

void
touch()
{
    ROBOSHAPE_OBS_COUNT("corpus.listed", 1);
    ROBOSHAPE_OBS_RECORD("corpus.stale", 2);
    ROBOSHAPE_OBS_COUNT("test.corpus.scratch", 3);
}
