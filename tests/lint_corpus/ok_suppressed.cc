// Fixture: both suppression spellings silence real violations, and
// NOLINT markers naming unknown (clang-tidy) rules are ignored without
// tripping unused-suppression.
#include <cstdlib>
#include <string>

unsigned long
parse_trusted(const std::string &text)
{
    // Token pre-validated by the caller's grammar loop.
    return std::stoul(text); // NOLINT(banned-raw-parse)
}

double
parse_trusted_double(const char *text)
{
    // NOLINTNEXTLINE(banned-raw-parse)
    return std::strtod(text, nullptr);
}

int
identity(int v)
{
    return v; // NOLINT(bugprone-branch-clone)
}
