// Fixture: the sanctioned alternatives — a seeded counter-based
// generator and duration arithmetic that never reads a clock.
#include <chrono>
#include <cstdint>

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::chrono::microseconds
budget_left(std::chrono::microseconds total, std::chrono::microseconds used)
{
    // "time" in a comment and "rand" in a string must not fire.
    const char *label = "rand-free";
    (void)label;
    return total - used;
}
