// Fixture: no-nondeterminism must fire on entropy and clock reads in
// library code — call-shaped (rand, time) and type-shaped
// (steady_clock, random_device) alike.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

double
jitter()
{
    std::srand(static_cast<unsigned>(std::time(nullptr)));
    return static_cast<double>(std::rand());
}

long
stamp()
{
    std::random_device rd;
    (void)rd;
    return std::chrono::steady_clock::now().time_since_epoch().count();
}
