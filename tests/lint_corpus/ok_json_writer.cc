// Fixture: JsonWriter is the sanctioned path; non-JSON braces (printf
// of a plain word, ostream of "[i]" index rendering) must not fire.
#include <cstdio>
#include <sstream>
#include <string>

#include "obs/json.h"

std::string
report(const std::string &name, int cycles)
{
    roboshape::obs::JsonWriter w;
    w.begin_object();
    w.kv("name", name);
    w.kv("cycles", cycles);
    w.end_object();
    return w.str();
}

std::string
debug_index(int i)
{
    std::ostringstream os;
    os << "lane[" << i << "]";
    std::printf("lane %d ready\n", i);
    return os.str();
}
