// Fixture: the strict parser is the sanctioned path; mentions of the
// banned names inside comments ("use stoul here" — no) and string
// literals ("strtod") must not fire either.
#include <optional>
#include <string_view>

#include "core/parse_uint.h"

std::optional<unsigned long>
parse_knob(std::string_view text)
{
    const char *note = "never call atoi on user input";
    (void)note;
    const auto v = roboshape::core::parse_uint(text, 1, 64);
    if (!v)
        return std::nullopt;
    return static_cast<unsigned long>(*v);
}
