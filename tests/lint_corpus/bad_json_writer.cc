// Fixture: json-writer-only must fire on hand-assembled JSON through
// both sink families (ostream << and printf).
#include <cstdio>
#include <sstream>
#include <string>

std::string
report_stream(const std::string &name, int cycles)
{
    std::ostringstream os;
    os << "{";
    os << "\"name\": \"" << name << "\", \"cycles\": " << cycles;
    os << "}";
    return os.str();
}

void
report_printf(const char *name, int cycles)
{
    std::printf("{\"name\": \"%s\", \"cycles\": %d}\n", name, cycles);
}
