// Fixture: a warm region that only reuses existing capacity.  assign()
// is the sanctioned capacity-preserving clear; growth happens outside.
#include <vector>

void
prepare(std::vector<double> &buf, std::size_t n)
{
    buf.resize(n); // cold setup, outside the region
}

double
step(std::vector<double> &buf, double x)
{
    // lint: warm-path begin
    buf.assign(buf.size(), x);
    double acc = 0.0;
    for (const double v : buf)
        acc += v;
    // lint: warm-path end
    return acc;
}
