// Fixture: a NOLINT naming a roboshape_lint rule that never fires on
// its line must itself be reported, so stale annotations cannot rot.
int
add(int a, int b)
{
    return a + b; // NOLINT(banned-raw-parse)
}
