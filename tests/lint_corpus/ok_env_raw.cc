// Fixture: "getenv" in comments and strings is not a call — only the
// validated helpers may read the environment, and this file reads none.
#include <cstddef>

std::size_t
thread_count(std::size_t configured)
{
    // A real knob would come through the validated ROBOSHAPE_THREADS
    // helper in core/executor.cc, never a raw getenv here.
    const char *doc = "see docs: getenv is banned outside the helpers";
    (void)doc;
    return configured ? configured : 1;
}
