// Fixture: banned-env-raw must fire on raw environment reads.
#include <cstdlib>

const char *
threads_knob()
{
    return std::getenv("ROBOSHAPE_THREADS");
}

const char *
simd_knob()
{
    return secure_getenv("ROBOSHAPE_SIMD");
}
