// Fixture: counter-name-sync must fire on a counter the doc catalog
// does not list.  (The test registers a catalog containing only
// `corpus.listed` and `corpus.stale`.)
#include "obs/registry.h"

void
touch()
{
    ROBOSHAPE_OBS_COUNT("corpus.not_in_doc", 1);
    ROBOSHAPE_OBS_RECORD("corpus.listed", 5);
}
