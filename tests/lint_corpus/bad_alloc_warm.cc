// Fixture: no-alloc-warm-path must fire on allocation inside an
// annotated warm region, and stay silent outside it.
#include <vector>

void
prepare(std::vector<double> &buf)
{
    buf.reserve(64); // cold path: fine out here
}

double
step(std::vector<double> &buf, double x)
{
    // lint: warm-path begin
    buf.push_back(x);
    double *p = static_cast<double *>(malloc(sizeof(double)));
    *p = x;
    const double y = *p;
    // lint: warm-path end
    return y;
}
