// Fixture: banned-raw-parse must fire on each bare conversion call.
#include <cstdlib>
#include <string>

unsigned long
parse_knob(const std::string &text)
{
    return std::stoul(text);
}

double
parse_gain(const char *text)
{
    return std::strtod(text, nullptr);
}

int
parse_count(const char *text)
{
    return std::atoi(text);
}
