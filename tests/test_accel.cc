/**
 * @file
 * Tests for the accelerator model: resource estimates anchored at the
 * paper's Table 2, design generation, the clock model, and — critically —
 * functional equivalence of the simulated accelerator against the host
 * dynamics library.
 */

#include <gtest/gtest.h>

#include <random>

#include "accel/design.h"
#include "accel/functional_sim.h"
#include "accel/platform.h"
#include "accel/resource_model.h"
#include "dynamics/fd_derivatives.h"
#include "dynamics/robot_state.h"
#include "topology/robot_library.h"

namespace roboshape {
namespace accel {
namespace {

using dynamics::RobotState;
using dynamics::random_state;
using linalg::max_abs_diff;
using topology::RobotId;
using topology::RobotModel;
using topology::TopologyInfo;
using topology::all_robots;
using topology::build_robot;
using topology::robot_name;

/** Paper knob settings of the three shipped designs (Sec. 5.1). */
AcceleratorParams
shipped_params(RobotId id)
{
    switch (id) {
      case RobotId::kIiwa:
        return {7, 7, 7};
      case RobotId::kHyq:
        return {3, 3, 6};
      case RobotId::kBaxter:
        return {4, 4, 4};
      default:
        return {1, 1, 1};
    }
}

// ------------------------------------------------------- resource model ----

TEST(ResourceModel, ReproducesTable2Exactly)
{
    // Table 2: LUTs 514552 / 507158 / 873805; DSPs 5448 / 3008 / 3342.
    struct Row
    {
        RobotId id;
        std::int64_t luts, dsps;
    };
    const Row rows[] = {
        {RobotId::kIiwa, 514552, 5448},
        {RobotId::kHyq, 507158, 3008},
        {RobotId::kBaxter, 873805, 3342},
    };
    for (const Row &row : rows) {
        const AcceleratorDesign design(build_robot(row.id),
                                       shipped_params(row.id));
        EXPECT_EQ(design.resources().luts, row.luts) << robot_name(row.id);
        EXPECT_EQ(design.resources().dsps, row.dsps) << robot_name(row.id);
    }
}

TEST(ResourceModel, Table2UtilizationPercentages)
{
    // Paper Table 2: iiwa 43.5% LUTs / 79.6% DSPs on the XCVU9P.
    const AcceleratorDesign iiwa(build_robot(RobotId::kIiwa),
                                 shipped_params(RobotId::kIiwa));
    EXPECT_NEAR(iiwa.resources().lut_utilization(vcu118()), 0.435, 0.005);
    EXPECT_NEAR(iiwa.resources().dsp_utilization(vcu118()), 0.796, 0.005);
    const AcceleratorDesign baxter(build_robot(RobotId::kBaxter),
                                   shipped_params(RobotId::kBaxter));
    EXPECT_NEAR(baxter.resources().lut_utilization(vcu118()), 0.739, 0.005);
    EXPECT_NEAR(baxter.resources().dsp_utilization(vcu118()), 0.489, 0.005);
}

TEST(ResourceModel, MonotoneInKnobs)
{
    const std::size_t n = 12;
    const ResourceEstimate base = estimate_resources({2, 2, 3}, n);
    EXPECT_GT(estimate_resources({3, 2, 3}, n).luts, base.luts);
    EXPECT_GT(estimate_resources({2, 3, 3}, n).dsps, base.dsps);
    EXPECT_GT(estimate_resources({2, 2, 6}, n).dsps, base.dsps);
    EXPECT_GT(estimate_resources({2, 2, 6}, n).luts, base.luts);
    // The marshalling network grows with robot size for fixed knobs.
    EXPECT_GT(estimate_resources({2, 2, 3}, 19).luts, base.luts);
}

TEST(ResourceModel, RcBaselineMatchesPublishedIiwaAndCannotScale)
{
    // RC iiwa: 49.0% LUTs, 77.5% DSPs on the XCVU9P (paper Sec. 5.1).
    const ResourceEstimate rc7 = estimate_rc_resources(7);
    EXPECT_NEAR(rc7.lut_utilization(vcu118()), 0.490, 0.005);
    EXPECT_NEAR(rc7.dsp_utilization(vcu118()), 0.775, 0.005);
    // Beyond iiwa, RC's naive per-link scaling exhausts the part.
    const ResourceEstimate rc12 = estimate_rc_resources(12);
    EXPECT_GT(rc12.dsps, vcu118().dsps);
    const ResourceEstimate rc15 = estimate_rc_resources(15);
    EXPECT_GT(rc15.luts, vcu118().luts);
}

TEST(ResourceModel, FitsRespectsThreshold)
{
    ResourceEstimate r{static_cast<std::int64_t>(vcu118().luts * 0.79),
                       static_cast<std::int64_t>(vcu118().dsps * 0.5)};
    EXPECT_TRUE(r.fits(vcu118()));
    r.luts = static_cast<std::int64_t>(vcu118().luts * 0.81);
    EXPECT_FALSE(r.fits(vcu118()));
    EXPECT_TRUE(r.fits(vcu118(), /*threshold=*/0.9));
}

// ----------------------------------------------------------- the design ----

TEST(Design, LatencyCompositionsAreOrdered)
{
    for (RobotId id : all_robots()) {
        const AcceleratorDesign d(build_robot(id), {3, 3, 4});
        EXPECT_LE(d.cycles_pipelined(), d.cycles_overlapped())
            << robot_name(id);
        EXPECT_LE(d.cycles_overlapped(), d.cycles_no_pipelining())
            << robot_name(id);
        EXPECT_GT(d.cycles_pipelined(), 0) << robot_name(id);
    }
}

TEST(Design, SchedulesAreValid)
{
    for (RobotId id : all_robots()) {
        const AcceleratorDesign d(build_robot(id), shipped_params(id));
        EXPECT_EQ(validate_schedule(d.task_graph(), d.forward_stage()), "");
        EXPECT_EQ(validate_schedule(d.task_graph(), d.backward_stage()), "");
        EXPECT_EQ(validate_schedule(d.task_graph(), d.pipelined()), "");
    }
}

TEST(Design, ClockPeriodsMatchPaperSection51)
{
    // Paper Sec. 5.1: timing closed at 18 ns (iiwa), 18 ns (HyQ), and
    // 22 ns (Baxter).
    const AcceleratorDesign iiwa(build_robot(RobotId::kIiwa),
                                 shipped_params(RobotId::kIiwa));
    const AcceleratorDesign hyq(build_robot(RobotId::kHyq),
                                shipped_params(RobotId::kHyq));
    const AcceleratorDesign baxter(build_robot(RobotId::kBaxter),
                                   shipped_params(RobotId::kBaxter));
    EXPECT_NEAR(iiwa.clock_period_ns(), 18.0, 1e-9);
    EXPECT_NEAR(hyq.clock_period_ns(), 18.0, 1e-9);
    EXPECT_NEAR(baxter.clock_period_ns(), 22.0, 1e-9);
}

TEST(Design, ClockPeriodGrowsWithRobotScale)
{
    // Bigger/deeper robots close timing at slower clocks.
    const RobotModel iiwa = build_robot(RobotId::kIiwa);
    const RobotModel arm = build_robot(RobotId::kHyqWithArm);
    const AcceleratorDesign small(iiwa, {2, 2, 2});
    const AcceleratorDesign big(arm, {2, 2, 2});
    EXPECT_GT(big.clock_period_ns(), small.clock_period_ns());
}

// ------------------------------------------------- functional equivalence ----

class SimEquivalence
    : public ::testing::TestWithParam<std::tuple<RobotId, std::uint32_t>>
{
};

TEST_P(SimEquivalence, SimulatorMatchesHostReference)
{
    const RobotId id = std::get<0>(GetParam());
    const std::uint32_t seed = std::get<1>(GetParam());
    const RobotModel model = build_robot(id);
    const TopologyInfo topo(model);
    const RobotState s = random_state(model, seed);

    // Host-side reference (the CPU library).
    const auto ref = dynamics::forward_dynamics_gradients(model, topo, s.q,
                                                          s.qd, s.tau);

    // Accelerator inputs mirror the coprocessor I/O: q, qd, the
    // linearization qdd, and M^-1.
    const AcceleratorDesign design(model, shipped_params(id));
    for (SimOrder order : {SimOrder::kStaged, SimOrder::kPipelined}) {
        const SimResult sim = simulate(design, s.q, s.qd, ref.qdd,
                                       ref.mass_inv,
                                       dynamics::kDefaultGravity, order);
        EXPECT_LT(max_abs_diff(sim.dqdd_dq, ref.dqdd_dq), 1e-10)
            << robot_name(id);
        EXPECT_LT(max_abs_diff(sim.dqdd_dqd, ref.dqdd_dqd), 1e-10)
            << robot_name(id);
        // The RNEA stage's torques equal ID(q, qd, qdd).
        const auto tau_ref = dynamics::rnea(model, s.q, s.qd, ref.qdd);
        EXPECT_LT(max_abs_diff(sim.tau, tau_ref), 1e-10) << robot_name(id);
        EXPECT_GT(sim.mm_stats.block_macs, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Robots, SimEquivalence,
    ::testing::Combine(::testing::ValuesIn(all_robots()),
                       ::testing::Values(101u, 202u)),
    [](const auto &gen_info) {
        std::string name = robot_name(std::get<0>(gen_info.param));
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name + "_s" + std::to_string(std::get<1>(gen_info.param));
    });

TEST(Sim, RandomKnobPointsAllComputeCorrectly)
{
    // Functional equivalence must hold at arbitrary design-space points,
    // not just the shipped ones: sample a deterministic spread of knob
    // combinations per robot.
    for (RobotId id : all_robots()) {
        const RobotModel model = build_robot(id);
        const TopologyInfo topo(model);
        const std::size_t n = model.num_links();
        const RobotState s = random_state(model, 77);
        const auto ref = dynamics::forward_dynamics_gradients(
            model, topo, s.q, s.qd, s.tau);
        std::mt19937 rng(static_cast<unsigned>(1000 + n));
        std::uniform_int_distribution<std::size_t> knob(1, n);
        for (int trial = 0; trial < 4; ++trial) {
            const AcceleratorParams params{knob(rng), knob(rng),
                                           knob(rng)};
            const AcceleratorDesign design(model, params);
            const SimResult sim =
                simulate(design, s.q, s.qd, ref.qdd, ref.mass_inv);
            ASSERT_LT(max_abs_diff(sim.dqdd_dq, ref.dqdd_dq), 1e-10)
                << robot_name(id) << " " << params.to_string();
            ASSERT_LT(max_abs_diff(sim.dqdd_dqd, ref.dqdd_dqd), 1e-10)
                << robot_name(id) << " " << params.to_string();
        }
    }
}

TEST(Sim, MinimalAllocationStillComputesCorrectly)
{
    // A 1-PE, block-1 design is the slowest point of the design space but
    // must be numerically identical.
    const RobotModel model = build_robot(RobotId::kJaco3);
    const TopologyInfo topo(model);
    const RobotState s = random_state(model, 7);
    const auto ref = dynamics::forward_dynamics_gradients(model, topo, s.q,
                                                          s.qd, s.tau);
    const AcceleratorDesign design(model, {1, 1, 1});
    const SimResult sim =
        simulate(design, s.q, s.qd, ref.qdd, ref.mass_inv);
    EXPECT_LT(max_abs_diff(sim.dqdd_dq, ref.dqdd_dq), 1e-10);
    EXPECT_LT(max_abs_diff(sim.dqdd_dqd, ref.dqdd_dqd), 1e-10);
}

TEST(Sim, BlockedMultiplySkipsNopTilesOnMultiLimbRobots)
{
    const RobotModel model = build_robot(RobotId::kHyq);
    const TopologyInfo topo(model);
    const RobotState s = random_state(model, 9);
    const auto ref = dynamics::forward_dynamics_gradients(model, topo, s.q,
                                                          s.qd, s.tau);
    const AcceleratorDesign design(model, {3, 3, 3});
    const SimResult sim =
        simulate(design, s.q, s.qd, ref.qdd, ref.mass_inv);
    EXPECT_GT(sim.mm_stats.block_nops, 0u);
}

TEST(Sim, HazardCheckerRejectsInvalidOrders)
{
    // Running the schedule backwards must trip the read-before-write
    // guards, proving that passing tests really exercise dependency-clean
    // schedules rather than a checker that never fires.
    const RobotModel model = build_robot(RobotId::kHyq);
    const TopologyInfo topo(model);
    const RobotState s = random_state(model, 3);
    const auto ref = dynamics::forward_dynamics_gradients(model, topo, s.q,
                                                          s.qd, s.tau);
    const AcceleratorDesign design(model, {3, 3, 3});
    EXPECT_THROW(simulate(design, s.q, s.qd, ref.qdd, ref.mass_inv,
                          dynamics::kDefaultGravity,
                          SimOrder::kAdversarialReversed),
                 DataHazardError);
}

TEST(Design, BatchedLatencyIsFirstPlusInitiationIntervals)
{
    const AcceleratorDesign d(build_robot(RobotId::kHyq), {3, 3, 6});
    EXPECT_EQ(d.cycles_batched(0), 0);
    EXPECT_EQ(d.cycles_batched(1), d.cycles_no_pipelining());
    EXPECT_EQ(d.cycles_batched(4),
              d.cycles_no_pipelining() + 3 * d.cycles_pipelined());
    EXPECT_GT(d.latency_us_batched(4), d.latency_us_no_pipelining());
}

} // namespace
} // namespace accel
} // namespace roboshape
