/**
 * @file
 * Tests for the Verilog emitter: structural well-formedness and fidelity
 * of the schedule ROMs to the generated schedules.
 */

#include <gtest/gtest.h>

#include <regex>

#include "codegen/verilog_emitter.h"
#include "topology/robot_library.h"

namespace roboshape {
namespace codegen {
namespace {

using topology::RobotId;
using topology::build_robot;

std::size_t
count_occurrences(const std::string &haystack, const std::string &needle)
{
    std::size_t count = 0, pos = 0;
    while ((pos = haystack.find(needle, pos)) != std::string::npos) {
        ++count;
        pos += needle.size();
    }
    return count;
}

TEST(Codegen, ModuleNameIsVerilogLegal)
{
    const accel::AcceleratorDesign d(build_robot(RobotId::kHyqWithArm),
                                     {2, 2, 3});
    const std::string name = module_name(d);
    EXPECT_TRUE(std::regex_match(name,
                                 std::regex("[A-Za-z_][A-Za-z0-9_]*")));
}

TEST(Codegen, TopModuleIsStructurallyBalanced)
{
    const accel::AcceleratorDesign d(build_robot(RobotId::kBaxter),
                                     {4, 4, 4});
    const std::string v = emit_verilog(d);
    EXPECT_EQ(count_occurrences(v, "module "), count_occurrences(v,
                                                                 "endmodule"));
    EXPECT_EQ(count_occurrences(v, "case ("),
              count_occurrences(v, "endcase"));
    EXPECT_EQ(count_occurrences(v, "function "),
              count_occurrences(v, "endfunction"));
    EXPECT_EQ(count_occurrences(v, "\n  generate"),
              count_occurrences(v, "\n  endgenerate"));
}

TEST(Codegen, EmitsOneRomPerPe)
{
    const accel::AcceleratorDesign d(build_robot(RobotId::kHyq), {3, 2, 6});
    const std::string v = emit_verilog(d);
    for (int pe = 0; pe < 3; ++pe)
        EXPECT_NE(v.find("fwd_pe" + std::to_string(pe) + "_rom"),
                  std::string::npos);
    EXPECT_EQ(v.find("fwd_pe3_rom"), std::string::npos);
    for (int pe = 0; pe < 2; ++pe)
        EXPECT_NE(v.find("bwd_pe" + std::to_string(pe) + "_rom"),
                  std::string::npos);
    EXPECT_EQ(v.find("bwd_pe2_rom"), std::string::npos);
}

TEST(Codegen, RomEntriesCoverEveryTask)
{
    const accel::AcceleratorDesign d(build_robot(RobotId::kIiwa),
                                     {7, 7, 7});
    const std::string v = emit_verilog(d);
    // One "16'd<slot>:" line per scheduled traversal task (the default
    // idle entry uses no slot literal).
    const std::size_t entries = count_occurrences(v, "16'd");
    EXPECT_EQ(entries, d.task_graph().size());
}

TEST(Codegen, ParametersMatchKnobs)
{
    const accel::AcceleratorDesign d(build_robot(RobotId::kJaco2),
                                     {5, 6, 3});
    const std::string v = emit_verilog(d);
    EXPECT_NE(v.find("parameter PES_FWD    = 5"), std::string::npos);
    EXPECT_NE(v.find("parameter PES_BWD    = 6"), std::string::npos);
    EXPECT_NE(v.find("parameter SIZE_BLOCK = 3"), std::string::npos);
    EXPECT_NE(v.find("parameter N_LINKS    = 12"), std::string::npos);
}

TEST(Codegen, LatencyConstantMatchesModel)
{
    const accel::AcceleratorDesign d(build_robot(RobotId::kHyq), {3, 3, 6});
    const std::string v = emit_verilog(d);
    EXPECT_NE(v.find("localparam CYCLES_TOTAL = " +
                     std::to_string(d.cycles_no_pipelining())),
              std::string::npos);
}

TEST(Codegen, TestbenchReferencesTopModule)
{
    const accel::AcceleratorDesign d(build_robot(RobotId::kBaxter),
                                     {4, 4, 4});
    const std::string tb = emit_testbench(d);
    EXPECT_NE(tb.find(module_name(d) + " dut"), std::string::npos);
    EXPECT_NE(tb.find("$finish"), std::string::npos);
    EXPECT_EQ(count_occurrences(tb, "module "),
              count_occurrences(tb, "endmodule"));
}

TEST(Codegen, DistinctRobotsProduceDistinctModules)
{
    const accel::AcceleratorDesign a(build_robot(RobotId::kIiwa),
                                     {2, 2, 2});
    const accel::AcceleratorDesign b(build_robot(RobotId::kHyq), {2, 2, 2});
    EXPECT_NE(module_name(a), module_name(b));
    EXPECT_NE(emit_verilog(a), emit_verilog(b));
}

TEST(Codegen, CellLibraryDefinesBothDatapaths)
{
    const std::string cells = emit_cell_library();
    EXPECT_NE(cells.find("module roboshape_traversal_pe"),
              std::string::npos);
    EXPECT_NE(cells.find("module roboshape_block_mv"), std::string::npos);
    EXPECT_EQ(count_occurrences(cells, "module "),
              count_occurrences(cells, "endmodule"));
}

} // namespace
} // namespace codegen
} // namespace roboshape
