/**
 * @file
 * Tests for forward kinematics, Jacobians, and the parametric robot
 * generators.
 */

#include <gtest/gtest.h>

#include "dynamics/crba.h"
#include "dynamics/kinematics.h"
#include "dynamics/rnea.h"
#include "dynamics/rnea_derivatives.h"
#include "dynamics/finite_diff.h"
#include "dynamics/robot_state.h"
#include "linalg/factorization.h"
#include "topology/parametric_robots.h"
#include "topology/robot_library.h"
#include "topology/topology_info.h"

namespace roboshape {
namespace dynamics {
namespace {

using linalg::Matrix;
using linalg::Vector;
using topology::RobotId;
using topology::RobotModel;
using topology::all_robots;
using topology::build_robot;
using topology::robot_name;

TEST(ForwardKinematics, ZeroConfigurationComposesTreeOffsets)
{
    // iiwa at q = 0: every segment stacks along +z from the base offset.
    const RobotModel m = build_robot(RobotId::kIiwa);
    const Vector q(m.num_links());
    const ForwardKinematics fk = forward_kinematics(m, q);
    double expected_z = 0.15; // base offset of the first link
    for (std::size_t i = 0; i < m.num_links(); ++i) {
        const auto p = fk.origin_in_base(i);
        EXPECT_NEAR(p.x, 0.0, 1e-12);
        EXPECT_NEAR(p.y, 0.0, 1e-12);
        EXPECT_NEAR(p.z, expected_z, 1e-12) << "link " << i;
        expected_z += 0.22;
    }
}

TEST(ForwardKinematics, TransformsAreRigid)
{
    for (RobotId id : all_robots()) {
        const RobotModel m = build_robot(id);
        const RobotState s = random_state(m, 31);
        const ForwardKinematics fk = forward_kinematics(m, s.q);
        for (std::size_t i = 0; i < m.num_links(); ++i) {
            const auto &e = fk.base_to_link[i].rotation_matrix();
            const auto ete = e.transposed() * e;
            for (std::size_t r = 0; r < 3; ++r)
                for (std::size_t c = 0; c < 3; ++c)
                    EXPECT_NEAR(ete(r, c), r == c ? 1.0 : 0.0, 1e-10);
        }
    }
}

class JacobianSweep
    : public ::testing::TestWithParam<std::tuple<RobotId, std::uint32_t>>
{
};

TEST_P(JacobianSweep, JacobianTimesQdEqualsLinkVelocity)
{
    const RobotModel m = build_robot(std::get<0>(GetParam()));
    const RobotState s = random_state(m, std::get<1>(GetParam()));
    const auto velocities = link_velocities(m, s.q, s.qd);
    for (std::size_t link = 0; link < m.num_links(); ++link) {
        const Matrix jac = link_jacobian(m, s.q, link);
        const Vector v = jac * s.qd;
        for (std::size_t r = 0; r < 6; ++r)
            EXPECT_NEAR(v[r], velocities[link][r], 1e-9)
                << "link " << link << " row " << r;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Robots, JacobianSweep,
    ::testing::Combine(::testing::ValuesIn(all_robots()),
                       ::testing::Values(3u, 7u)),
    [](const auto &gen_info) {
        std::string name = robot_name(std::get<0>(gen_info.param));
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name + "_s" + std::to_string(std::get<1>(gen_info.param));
    });

TEST(Jacobian, SparsityFollowsAncestorClosure)
{
    const RobotModel m = build_robot(RobotId::kBaxter);
    const topology::TopologyInfo topo(m);
    const RobotState s = random_state(m, 5);
    for (std::size_t link = 0; link < m.num_links(); ++link) {
        const Matrix jac = link_jacobian(m, s.q, link);
        for (std::size_t j = 0; j < m.num_links(); ++j) {
            const bool ancestor = topo.is_ancestor_or_self(j, link);
            double col_norm = 0.0;
            for (std::size_t r = 0; r < 6; ++r)
                col_norm += std::abs(jac(r, j));
            if (!ancestor)
                EXPECT_EQ(col_norm, 0.0) << link << "," << j;
            else
                EXPECT_GT(col_norm, 0.0) << link << "," << j;
        }
    }
}

TEST(Jacobian, MassMatrixEqualsJacobianQuadraticForm)
{
    // M(q) == sum_i J_i^T I_i J_i — ties CRBA, kinematics, and inertias
    // together through an independent identity.
    const RobotModel m = build_robot(RobotId::kJaco2);
    const RobotState s = random_state(m, 13);
    const std::size_t n = m.num_links();
    Matrix h(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        const Matrix jac = link_jacobian(m, s.q, i);
        Matrix inertia6(6, 6);
        const auto im = m.link(i).inertia.to_matrix();
        for (std::size_t r = 0; r < 6; ++r)
            for (std::size_t c = 0; c < 6; ++c)
                inertia6(r, c) = im(r, c);
        h += jac.transposed() * inertia6 * jac;
    }
    EXPECT_LT(linalg::max_abs_diff(h, crba(m, s.q)), 1e-8);
}

TEST(CenterOfMass, HangsBelowBaseForZeroConfiguration)
{
    const RobotModel m = build_robot(RobotId::kIiwa);
    const Vector q(m.num_links());
    const auto com = center_of_mass(m, q);
    EXPECT_NEAR(com.x, 0.0, 1e-12);
    EXPECT_NEAR(com.y, 0.0, 1e-12);
    EXPECT_GT(com.z, 0.15);
    EXPECT_GT(total_mass(m), 0.0);
}

// ------------------------------------------------- parametric robots ----

TEST(ParametricRobots, SerialChainMetrics)
{
    const RobotModel chain = topology::make_serial_chain(64);
    const topology::TopologyInfo topo(chain);
    const auto metrics = topo.metrics();
    EXPECT_EQ(metrics.total_links, 64u);
    EXPECT_EQ(metrics.max_leaf_depth, 64u);
    EXPECT_EQ(metrics.max_descendants, 64u);
    EXPECT_EQ(metrics.leaf_depth_stdev, 0.0);
}

TEST(ParametricRobots, StarMetrics)
{
    const RobotModel star = topology::make_star(8, 16);
    const topology::TopologyInfo topo(star);
    const auto metrics = topo.metrics();
    EXPECT_EQ(metrics.total_links, 128u);
    EXPECT_EQ(metrics.max_leaf_depth, 16u);
    EXPECT_EQ(metrics.max_descendants, 16u);
    EXPECT_EQ(topo.limb_spans().size(), 8u);
    EXPECT_NEAR(topo.mass_matrix_sparsity(), 1.0 - 1.0 / 8.0, 1e-12);
}

TEST(ParametricRobots, BranchingTreeMetrics)
{
    // depth 4, branching 2: 2 + 4 + 8 + 16 = 30 links, 8 per root subtree.
    const RobotModel tree = topology::make_branching_tree(4, 2);
    const topology::TopologyInfo topo(tree);
    const auto metrics = topo.metrics();
    EXPECT_EQ(metrics.total_links, 30u);
    EXPECT_EQ(metrics.max_leaf_depth, 4u);
    EXPECT_EQ(metrics.max_descendants, 15u);
    // Every non-leaf link is a branch point: 2 + 4 + 8 = 14.
    EXPECT_EQ(topo.branch_links().size(), 14u);
}

TEST(ParametricRobots, DynamicsStayWellPosed)
{
    // SPD mass matrices and RNEA/CRBA consistency even for a 96-link
    // continuum approximation and a dense tree.
    for (const RobotModel &m :
         {topology::make_serial_chain(96), topology::make_star(6, 10),
          topology::make_branching_tree(3, 3)}) {
        const RobotState s = random_state(m, 17);
        const Matrix h = crba(m, s.q);
        EXPECT_TRUE(linalg::Ldlt(h).ok()) << m.name();
        const Vector tau = rnea(m, s.q, s.qd, s.qdd);
        const Vector tau2 = h * s.qdd + bias_forces(m, s.q, s.qd);
        EXPECT_LT(linalg::max_abs_diff(tau, tau2), 1e-6) << m.name();
    }
}

TEST(ParametricRobots, GantryPrismaticDynamics)
{
    // Cartesian gantry with prismatic rails: metrics, RNEA/CRBA
    // consistency, and exact analytical derivatives.
    const RobotModel gantry = topology::make_gantry(3);
    const topology::TopologyInfo topo(gantry);
    EXPECT_EQ(gantry.num_links(), 6u);
    EXPECT_EQ(gantry.link(0).joint.type(), spatial::JointType::kPrismatic);

    const RobotState s = random_state(gantry, 21);
    const Matrix h = crba(gantry, s.q);
    EXPECT_TRUE(linalg::Ldlt(h).ok());
    const Vector tau = rnea(gantry, s.q, s.qd, s.qdd);
    EXPECT_LT(linalg::max_abs_diff(
                  tau, h * s.qdd + bias_forces(gantry, s.q, s.qd)),
              1e-8);

    RneaCache cache;
    rnea(gantry, s.q, s.qd, s.qdd, kDefaultGravity, &cache);
    const RneaDerivatives d = rnea_derivatives(gantry, topo, s.qd, cache);
    EXPECT_LT(linalg::max_abs_diff(
                  d.dtau_dq, fd_dtau_dq(gantry, s.q, s.qd, s.qdd)),
              2e-5);
    EXPECT_LT(linalg::max_abs_diff(
                  d.dtau_dqd, fd_dtau_dqd(gantry, s.q, s.qd, s.qdd)),
              2e-5);
}

TEST(ParametricRobots, GantryVerticalRailCarriesWeight)
{
    // With gravity along -z, holding still requires force on the z rail
    // equal to the weight it carries, and none on the x rail.
    const RobotModel gantry = topology::make_gantry(2);
    const std::size_t n = gantry.num_links();
    const Vector zero(n);
    const Vector hold = rnea(gantry, zero, zero, zero);
    // Mass above the z rail: rail_z (4kg) + wrist links (2kg total).
    EXPECT_NEAR(hold[2], 6.0 * 9.81, 1e-9);
    EXPECT_NEAR(hold[0], 0.0, 1e-9);
    EXPECT_NEAR(hold[1], 0.0, 1e-9);
}

} // namespace
} // namespace dynamics
} // namespace roboshape
