/**
 * @file
 * Tests for the CPU timing harness, the GPU latency model, and the
 * Robomorphic Computing baseline.
 */

#include <gtest/gtest.h>

#include "baselines/cpu_baseline.h"
#include "baselines/gpu_model.h"
#include "baselines/rc_baseline.h"
#include "topology/robot_library.h"
#include "topology/topology_info.h"

namespace roboshape {
namespace baselines {
namespace {

using topology::RobotId;
using topology::RobotModel;
using topology::TopologyInfo;
using topology::build_robot;

TEST(CpuBaseline, ProducesPositiveStableTimings)
{
    const RobotModel m = build_robot(RobotId::kIiwa);
    const CpuMeasurement a = measure_fd_gradients(m, 50);
    EXPECT_GT(a.min_us, 0.0);
    EXPECT_GE(a.mean_us, a.min_us * 0.5); // mean cannot undercut min by 2x
    EXPECT_EQ(a.trials, 50u);
}

TEST(CpuBaseline, LatencyGrowsWithRobotSize)
{
    // CPU compute latency scales roughly with total links (paper Sec. 5.1).
    const RobotModel iiwa = build_robot(RobotId::kIiwa);
    const RobotModel baxter = build_robot(RobotId::kBaxter);
    const double t_small = measure_fd_gradients(iiwa, 200).min_us;
    const double t_large = measure_fd_gradients(baxter, 200).min_us;
    EXPECT_GT(t_large, t_small);
}

TEST(CpuBaseline, RneaIsCheaperThanGradients)
{
    const RobotModel m = build_robot(RobotId::kHyq);
    const double rnea_us = measure_rnea(m, 500).min_us;
    const double grad_us = measure_fd_gradients(m, 100).min_us;
    EXPECT_LT(rnea_us, grad_us);
}

TEST(CpuBaseline, BatchRunsAllSteps)
{
    const RobotModel m = build_robot(RobotId::kIiwa);
    const CpuMeasurement b = measure_fd_gradients_batch(m, 4, 5);
    EXPECT_GT(b.min_us, 0.0);
}

TEST(GpuModel, IiwaAndHyqLandClose)
{
    // Paper Sec. 5.1: GPU latency is similar for iiwa and HyQ — iiwa is
    // fully sequential while HyQ has parallel limbs with short chains.
    const RobotModel iiwa = build_robot(RobotId::kIiwa);
    const RobotModel hyq = build_robot(RobotId::kHyq);
    const double gi =
        gpu_gradient_latency_us(TopologyInfo(iiwa).metrics());
    const double gh = gpu_gradient_latency_us(TopologyInfo(hyq).metrics());
    EXPECT_NEAR(gi / gh, 1.0, 0.1);
}

TEST(GpuModel, BaxterIsSlowerThanIiwa)
{
    const RobotModel iiwa = build_robot(RobotId::kIiwa);
    const RobotModel baxter = build_robot(RobotId::kBaxter);
    EXPECT_GT(gpu_gradient_latency_us(TopologyInfo(baxter).metrics()),
              gpu_gradient_latency_us(TopologyInfo(iiwa).metrics()));
}

TEST(GpuModel, BatchIsLatencyFlatUntilSmCountExceeded)
{
    const RobotModel m = build_robot(RobotId::kHyq);
    const auto metrics = TopologyInfo(m).metrics();
    const double single = gpu_gradient_latency_us(metrics);
    EXPECT_NEAR(gpu_batch_latency_us(metrics, 4), single, 1e-12);
    EXPECT_NEAR(gpu_batch_latency_us(metrics, 68), single, 1e-12);
    EXPECT_NEAR(gpu_batch_latency_us(metrics, 69), 2.0 * single, 1e-12);
}

TEST(RcBaseline, SupportsIiwaWithMatchingRoboShapeLatency)
{
    const RobotModel iiwa = build_robot(RobotId::kIiwa);
    const RcDesign rc = generate_rc_design(iiwa, accel::vcu118());
    ASSERT_TRUE(rc.supported);
    ASSERT_TRUE(rc.latency_us.has_value());
    // Paper Fig. 9: RoboShape gives identical latency to RC for iiwa.
    const accel::AcceleratorDesign rs(iiwa, {7, 7, 7});
    EXPECT_NEAR(*rc.latency_us, rs.latency_us_no_pipelining(), 1e-9);
}

TEST(RcBaseline, RejectsBranchingRobots)
{
    for (RobotId id : {RobotId::kHyq, RobotId::kBaxter, RobotId::kJaco2}) {
        const RobotModel m = build_robot(id);
        const RcDesign rc = generate_rc_design(m, accel::vcu118());
        EXPECT_FALSE(rc.supported) << topology::robot_name(id);
        EXPECT_FALSE(rc.limitation.empty());
    }
}

TEST(RcBaseline, ResourceBlowupBeyondIiwa)
{
    // Even a hypothetical 12-link chain exceeds the XCVU9P under RC's
    // per-link unrolling (paper Sec. 5.1).
    const RcDesign rc = generate_rc_design(
        build_robot(RobotId::kHyq), accel::vcu118());
    EXPECT_GT(rc.resources.dsps, accel::vcu118().dsps);
}

} // namespace
} // namespace baselines
} // namespace roboshape
