/**
 * @file
 * Live end-to-end test of the roboshaped telemetry plane: forks the real
 * `roboshape` binary (path baked in as ROBOSHAPE_CLI_PATH), runs
 * `serve --port 0`, drives traffic over real sockets, and asserts the
 * whole observability surface at once (docs/OBSERVABILITY.md):
 *
 *   - /metrics exposes a populated svc.request_us.design p99;
 *   - a request carrying X-Roboshape-Trace: 1 yields a valid Chrome
 *     trace from /v1/debug/trace/last;
 *   - SIGUSR1 dumps exactly the last N request ids, in order, to stderr;
 *   - SIGTERM drains gracefully (exit 0) and flushes the access log.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include "core/parse_uint.h"
#include "net/http.h"
#include "net/socket.h"
#include "obs/json.h"
#include "service/flight_recorder.h"

namespace {

using namespace roboshape;

constexpr const char *kAccessLogPath = "daemon_e2e_access.jsonl";
constexpr const char *kStderrPath = "daemon_e2e_stderr.log";

struct Daemon
{
    pid_t pid = -1;
    std::uint16_t port = 0;
};

/** Forks `roboshape serve --port 0 ...`; blocks until the bound port is
 *  announced on stdout.  stderr goes to kStderrPath for the SIGUSR1 and
 *  shutdown assertions. */
Daemon
spawn_daemon()
{
    Daemon daemon;
    int out_pipe[2];
    if (pipe(out_pipe) != 0)
        return daemon;

    const pid_t pid = fork();
    if (pid < 0) {
        close(out_pipe[0]);
        close(out_pipe[1]);
        return daemon;
    }
    if (pid == 0) {
        // Child: stdout -> pipe, stderr -> file, exec the daemon.
        dup2(out_pipe[1], STDOUT_FILENO);
        close(out_pipe[0]);
        close(out_pipe[1]);
        const int err = open(kStderrPath, O_WRONLY | O_CREAT | O_TRUNC,
                             0644);
        if (err >= 0) {
            dup2(err, STDERR_FILENO);
            close(err);
        }
        execl(ROBOSHAPE_CLI_PATH, "roboshape", "serve", "--port", "0",
              "--threads", "2", "--access-log", kAccessLogPath, "--slow-ms",
              "60000", static_cast<char *>(nullptr));
        _exit(127); // exec failed
    }
    close(out_pipe[1]);

    // Parent: read the startup line "roboshaped listening on 127.0.0.1:N".
    std::string banner;
    char buf[256];
    while (banner.find('\n') == std::string::npos) {
        const ssize_t n = read(out_pipe[0], buf, sizeof(buf));
        if (n <= 0)
            break;
        banner.append(buf, static_cast<std::size_t>(n));
    }
    close(out_pipe[0]);

    const std::string marker = "127.0.0.1:";
    const std::size_t at = banner.find(marker);
    if (at != std::string::npos) {
        const std::size_t start = at + marker.size();
        const std::size_t end = banner.find(' ', start);
        if (end != std::string::npos) {
            const auto port = core::parse_uint(
                banner.substr(start, end - start), 1, 65535);
            if (port) {
                daemon.pid = pid;
                daemon.port = static_cast<std::uint16_t>(*port);
                return daemon;
            }
        }
    }
    kill(pid, SIGKILL);
    waitpid(pid, nullptr, 0);
    return daemon;
}

net::HttpRequest
request_for(const std::string &method, const std::string &target,
            const std::string &body = "")
{
    net::HttpRequest request;
    request.method = method;
    request.target = target;
    request.version = "HTTP/1.1";
    request.body = body;
    return request;
}

std::string
slurp(const char *path)
{
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** All `"id":<n>` values inside the dump's requests array, in order. */
std::vector<std::uint64_t>
dump_request_ids(const std::string &dump)
{
    std::vector<std::uint64_t> ids;
    const std::size_t array_at = dump.find("\"requests\":[");
    if (array_at == std::string::npos)
        return ids;
    std::size_t pos = array_at;
    const std::string key = "\"id\":";
    while ((pos = dump.find(key, pos)) != std::string::npos) {
        pos += key.size();
        std::size_t end = pos;
        while (end < dump.size() && dump[end] >= '0' && dump[end] <= '9')
            ++end;
        const auto id = core::parse_uint(dump.substr(pos, end - pos));
        if (!id)
            return {};
        ids.push_back(*id);
        pos = end;
    }
    return ids;
}

TEST(DaemonE2E, LiveTelemetryPlane)
{
    std::remove(kAccessLogPath);
    std::remove(kStderrPath);

    const Daemon daemon = spawn_daemon();
    ASSERT_GT(daemon.pid, 0) << "daemon failed to start";
    ASSERT_NE(daemon.port, 0);

    net::TcpConn conn = net::dial(daemon.port, 5000);
    ASSERT_TRUE(conn.valid());
    std::string leftover;
    std::vector<std::uint64_t> ids; // every request id, in issue order

    const auto issue = [&](const net::HttpRequest &request)
        -> std::optional<net::HttpResponse> {
        const auto response =
            net::roundtrip(conn, request, leftover, 30000);
        if (response) {
            const auto id = response->header("X-Roboshape-Request-Id");
            if (id) {
                const auto parsed = core::parse_uint(std::string(*id));
                if (parsed)
                    ids.push_back(*parsed);
            }
        }
        return response;
    };

    // Enough /v1/design traffic to roll the flight recorder over.
    const std::size_t kDesignRequests =
        service::kFlightRecorderCapacity + 8;
    for (std::size_t i = 0; i < kDesignRequests; ++i) {
        const auto response = issue(request_for(
            "POST", "/v1/design", "{\"robot\": \"iiwa\"}"));
        ASSERT_TRUE(response) << i;
        ASSERT_EQ(response->status, 200) << i;
    }
    ASSERT_EQ(ids.size(), kDesignRequests);

    // The scrape surface: a populated p99 for the design endpoint.
    {
        const auto response = issue(request_for("GET", "/metrics"));
        ASSERT_TRUE(response);
        ASSERT_EQ(response->status, 200);
#ifndef ROBOSHAPE_NO_OBS
        // The instrumentation macros are compiled out under NO_OBS, so
        // the exposition is only populated in instrumented builds.
        const std::string needle =
            "roboshape_svc_request_us_design{quantile=\"0.99\"} ";
        const std::size_t at = response->body.find(needle);
        ASSERT_NE(at, std::string::npos);
        // The sample value is a positive integer (microseconds).
        const char first = response->body[at + needle.size()];
        EXPECT_GE(first, '1');
        EXPECT_LE(first, '9');
        EXPECT_NE(
            response->body.find("roboshape_svc_request_us_design_count"),
            std::string::npos);
#endif
    }

    // /v1/statz is valid JSON carrying the schema tag.
    {
        const auto response = issue(request_for("GET", "/v1/statz"));
        ASSERT_TRUE(response);
        ASSERT_EQ(response->status, 200);
        std::string error;
        EXPECT_TRUE(obs::validate_json(response->body, &error)) << error;
        EXPECT_NE(response->body.find("roboshape.metrics_dump/1"),
                  std::string::npos);
    }

    // A traced request produces a loadable Chrome trace.
    {
        net::HttpRequest traced =
            request_for("POST", "/v1/design", "{\"robot\": \"hyq\"}");
        traced.headers.emplace_back("X-Roboshape-Trace", "1");
        const auto response = issue(traced);
        ASSERT_TRUE(response);
        ASSERT_EQ(response->status, 200);

        const auto dump =
            issue(request_for("GET", "/v1/debug/trace/last"));
        ASSERT_TRUE(dump);
        ASSERT_EQ(dump->status, 200);
        std::string error;
        EXPECT_TRUE(obs::validate_json(dump->body, &error)) << error;
        EXPECT_NE(dump->body.find("\"traceEvents\""), std::string::npos);
#ifndef ROBOSHAPE_NO_OBS
        // Spans are only captured when the instrumentation is compiled in.
        EXPECT_NE(dump->body.find("svc.handle"), std::string::npos);
#endif
    }

    // SIGUSR1: the daemon dumps exactly the last N request ids, in
    // order, to stderr — without interrupting service.
    {
        ASSERT_EQ(kill(daemon.pid, SIGUSR1), 0);
        std::string err_text;
        for (int tries = 0; tries < 50; ++tries) {
            err_text = slurp(kStderrPath);
            if (err_text.find("flight recorder dump follows") !=
                std::string::npos)
                break;
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
        ASSERT_NE(err_text.find("flight recorder dump follows"),
                  std::string::npos);
        const std::vector<std::uint64_t> dumped =
            dump_request_ids(err_text);
        ASSERT_EQ(dumped.size(), service::kFlightRecorderCapacity);
        const std::vector<std::uint64_t> expected(
            ids.end() - static_cast<std::ptrdiff_t>(
                            service::kFlightRecorderCapacity),
            ids.end());
        EXPECT_EQ(dumped, expected);

        // Still serving after the dump.
        const auto response = issue(request_for("GET", "/healthz"));
        ASSERT_TRUE(response);
        EXPECT_EQ(response->status, 200);
    }

    // SIGTERM: graceful drain, clean exit, flushed access log.
    conn.close();
    ASSERT_EQ(kill(daemon.pid, SIGTERM), 0);
    int status = 0;
    ASSERT_EQ(waitpid(daemon.pid, &status, 0), daemon.pid);
    ASSERT_TRUE(WIFEXITED(status))
        << "raw status " << status << ", term signal "
        << (WIFSIGNALED(status) ? WTERMSIG(status) : 0);
    EXPECT_EQ(WEXITSTATUS(status), 0);

    std::ifstream log(kAccessLogPath);
    ASSERT_TRUE(log.good());
    std::string line;
    std::size_t lines = 0;
    while (std::getline(log, line)) {
        ++lines;
        std::string error;
        EXPECT_TRUE(obs::validate_json(line, &error)) << error;
        EXPECT_EQ(line.rfind("{\"id\":", 0), 0u) << line;
    }
    EXPECT_EQ(lines, ids.size());

    std::remove(kAccessLogPath);
    std::remove(kStderrPath);
}

} // namespace
