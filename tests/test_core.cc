/**
 * @file
 * Tests for the generator façade and the design-space machinery.
 */

#include <gtest/gtest.h>

#include "core/design_space.h"
#include "core/generator.h"
#include "core/design_export.h"
#include "core/soc_codesign.h"
#include "core/sweep_context.h"
#include "sched/block_schedule.h"
#include "sched/list_scheduler.h"
#include "topology/parametric_robots.h"
#include "topology/robot_library.h"

namespace roboshape {
namespace core {
namespace {

using topology::RobotId;
using topology::RobotModel;
using topology::TopologyInfo;
using topology::all_robots;
using topology::build_robot;
using topology::robot_name;

TEST(DesignSpace, CoversFullKnobCube)
{
    const RobotModel m = build_robot(RobotId::kIiwa);
    const DesignSpace space = DesignSpace::sweep(m);
    EXPECT_EQ(space.points().size(), 343u); // 7^3
}

TEST(DesignSpace, ParetoFrontierIsMinimalAndSorted)
{
    const RobotModel m = build_robot(RobotId::kHyq);
    const DesignSpace space = DesignSpace::sweep(m);
    const auto frontier = space.pareto_frontier();
    ASSERT_FALSE(frontier.empty());
    for (std::size_t i = 1; i < frontier.size(); ++i) {
        EXPECT_GE(frontier[i].resources.luts,
                  frontier[i - 1].resources.luts);
        EXPECT_LT(frontier[i].cycles, frontier[i - 1].cycles);
    }
    // No point in the space dominates a frontier point.
    for (const DesignPoint &f : frontier) {
        for (const DesignPoint &p : space.points()) {
            const bool dominates =
                p.resources.luts <= f.resources.luts &&
                p.cycles <= f.cycles &&
                (p.resources.luts < f.resources.luts ||
                 p.cycles < f.cycles);
            EXPECT_FALSE(dominates);
        }
    }
}

TEST(DesignSpace, OptimalPointHasMinimumCycles)
{
    const RobotModel m = build_robot(RobotId::kBaxter);
    const DesignSpace space = DesignSpace::sweep(m);
    const DesignPoint opt = space.optimal_min_latency();
    EXPECT_EQ(opt.cycles, space.min_cycles());
    // Tie-break: nothing at minimum cycles uses fewer LUTs.
    for (const DesignPoint &p : space.points()) {
        if (p.cycles == opt.cycles) {
            EXPECT_GE(p.resources.luts, opt.resources.luts);
        }
    }
}

TEST(DesignSpace, MaxCyclesRangeMatchesPaperFig12Scale)
{
    // Paper Fig. 12: maximum latencies across the six robots' spaces span
    // 829-7230 cycles.  The reproduction's calibrated model lands in the
    // same order of magnitude with the same ordering (HyQ smallest,
    // Jaco-3 largest).
    std::int64_t lo = std::numeric_limits<std::int64_t>::max(), hi = 0;
    std::int64_t hyq_max = 0, jaco3_max = 0;
    for (RobotId id : all_robots()) {
        const RobotModel m = build_robot(id);
        const std::int64_t mx = DesignSpace::sweep(m).max_cycles();
        lo = std::min(lo, mx);
        hi = std::max(hi, mx);
        if (id == RobotId::kHyq)
            hyq_max = mx;
        if (id == RobotId::kJaco3)
            jaco3_max = mx;
    }
    EXPECT_EQ(lo, hyq_max);
    EXPECT_EQ(hi, jaco3_max);
    EXPECT_GT(lo, 400);
    EXPECT_LT(hi, 10000);
}

TEST(DesignSpace, Vc707HasNoFeasibleHyqArmPoint)
{
    // Paper Fig. 16: no design point within the VC707 constraints exists
    // for HyQ+arm.
    const RobotModel m = build_robot(RobotId::kHyqWithArm);
    const DesignSpace space = DesignSpace::sweep(m);
    EXPECT_FALSE(space.constrained_min_latency(accel::vc707()).has_value());
    EXPECT_FALSE(space.max_allocation(accel::vc707()).has_value());
    // The big VCU118 fits it.
    EXPECT_TRUE(space.constrained_min_latency(accel::vcu118()).has_value());
    // Every other robot has VC707-feasible points (Fig. 16 shows bars for
    // all of them).
    for (RobotId id : all_robots()) {
        if (id == RobotId::kHyqWithArm)
            continue;
        const RobotModel other = build_robot(id);
        EXPECT_TRUE(DesignSpace::sweep(other)
                        .constrained_min_latency(accel::vc707())
                        .has_value())
            << robot_name(id);
    }
}

TEST(DesignSpace, MaxAllocationOftenMissesMinimumLatency)
{
    // Paper Insight #3: maximally-allocated designs often fail to match
    // the constrained minimum latency while using more resources.
    bool observed = false;
    for (RobotId id : all_robots()) {
        const RobotModel m = build_robot(id);
        const DesignSpace space = DesignSpace::sweep(m);
        const auto maxalloc = space.max_allocation(accel::vcu118());
        const auto best = space.constrained_min_latency(accel::vcu118());
        if (!maxalloc || !best)
            continue;
        EXPECT_GE(maxalloc->cycles, best->cycles);
        if (maxalloc->cycles > best->cycles &&
            maxalloc->resources.luts > best->resources.luts)
            observed = true;
    }
    EXPECT_TRUE(observed);
}

TEST(DesignSpace, BestBlockSizeAlignsWithHyqLegs)
{
    const RobotModel m = build_robot(RobotId::kHyq);
    const TopologyInfo topo(m);
    const std::size_t best = best_block_size(topo);
    EXPECT_TRUE(best == 3 || best == 6 || best == 9 || best == 12)
        << best;
}

TEST(Strategies, HybridMeetsMinimumLatencyOnDeepRobots)
{
    // For robots whose parallelism is depth-dominated (iiwa and the Jaco
    // variants), the Hybrid heuristic reaches the exhaustive-search
    // minimum exactly, as in paper Fig. 13.  (For limb-dominated robots
    // our work-conserving scheduler still profits from extra PEs; see
    // EXPERIMENTS.md, deviations.)
    for (RobotId id :
         {RobotId::kIiwa, RobotId::kJaco2, RobotId::kJaco3}) {
        const RobotModel m = build_robot(id);
        const DesignSpace space = DesignSpace::sweep(m);
        const StrategyEvaluation hybrid = evaluate_strategy(
            m, sched::AllocationStrategy::kHybrid, space);
        EXPECT_TRUE(hybrid.meets_minimum_latency) << robot_name(id);
    }
}

TEST(Strategies, HybridImprovesOnItsComponentStrategies)
{
    // Paper Sec. 5.4: the Hybrid of Max Leaf Depth (forward) and Max
    // Descendants (backward) improves on both constituent strategies.
    for (RobotId id : all_robots()) {
        const RobotModel m = build_robot(id);
        const DesignSpace space = DesignSpace::sweep(m);
        const auto hybrid = evaluate_strategy(
            m, sched::AllocationStrategy::kHybrid, space);
        const auto maxleaf = evaluate_strategy(
            m, sched::AllocationStrategy::kMaxLeafDepth, space);
        EXPECT_LE(hybrid.cycles, maxleaf.cycles) << robot_name(id);
        // And it never exceeds the naive Total-Links resource budget.
        const auto total = evaluate_strategy(
            m, sched::AllocationStrategy::kTotalLinks, space);
        EXPECT_LE(hybrid.resources.luts, total.resources.luts)
            << robot_name(id);
        EXPECT_LE(hybrid.resources.dsps, total.resources.dsps)
            << robot_name(id);
    }
}

TEST(Strategies, TotalLinksMeetsLatencyButWastesResources)
{
    // Paper Insight #1: naive Total-Links allocation reaches minimum
    // latency but over-provisions resources relative to Hybrid.
    for (RobotId id : {RobotId::kBaxter, RobotId::kJaco2}) {
        const RobotModel m = build_robot(id);
        const DesignSpace space = DesignSpace::sweep(m);
        const auto total = evaluate_strategy(
            m, sched::AllocationStrategy::kTotalLinks, space);
        const auto hybrid = evaluate_strategy(
            m, sched::AllocationStrategy::kHybrid, space);
        EXPECT_TRUE(total.meets_minimum_latency) << robot_name(id);
        EXPECT_GE(total.resources.luts, hybrid.resources.luts)
            << robot_name(id);
    }
}

TEST(Strategies, AvgLeafDepthUnderprovisionsAsymmetricRobots)
{
    // Paper Sec. 5.4: average leaf depth gives poor latency on every robot
    // whose metrics do not coincide with max leaf depth (e.g. Baxter).
    const RobotModel m = build_robot(RobotId::kBaxter);
    const DesignSpace space = DesignSpace::sweep(m);
    const auto avg = evaluate_strategy(
        m, sched::AllocationStrategy::kAvgLeafDepth, space);
    EXPECT_FALSE(avg.meets_minimum_latency);
}

TEST(Generator, FromUrdfProducesFeasibleDesignWithReport)
{
    GeneratorConstraints constraints;
    constraints.platform = &accel::vcu118();
    const Generator gen;
    const GeneratedAccelerator out =
        gen.from_urdf(topology::robot_urdf(RobotId::kBaxter), constraints);
    EXPECT_TRUE(out.design.resources().fits(accel::vcu118()));
    EXPECT_NE(out.report.find("baxter"), std::string::npos);
    EXPECT_NE(out.report.find("knobs"), std::string::npos);
}

TEST(Generator, RespectsExplicitKnobCaps)
{
    GeneratorConstraints constraints;
    constraints.max_pes_fwd = 2;
    constraints.max_pes_bwd = 3;
    constraints.max_block_size = 2;
    const Generator gen;
    const auto out =
        gen.from_model(build_robot(RobotId::kHyqWithArm), constraints);
    EXPECT_LE(out.design.params().pes_fwd, 2u);
    EXPECT_LE(out.design.params().pes_bwd, 3u);
    EXPECT_LE(out.design.params().block_size, 2u);
}

TEST(Generator, ShrinksOntoSmallPlatform)
{
    // HyQ must be shrunk to fit the VC707 but remains feasible.
    GeneratorConstraints constraints;
    constraints.platform = &accel::vc707();
    const Generator gen;
    const auto out =
        gen.from_model(build_robot(RobotId::kHyq), constraints);
    EXPECT_TRUE(out.design.resources().fits(accel::vc707()));
}

TEST(Generator, ThrowsWhenNothingFits)
{
    // HyQ+arm cannot fit the VC707 at 80% (paper Fig. 16).
    GeneratorConstraints constraints;
    constraints.platform = &accel::vc707();
    const Generator gen;
    EXPECT_THROW(gen.from_model(build_robot(RobotId::kHyqWithArm),
                                constraints),
                 GenerationError);
}

TEST(DesignExport, JsonContainsEverySection)
{
    const RobotModel m = build_robot(RobotId::kHyq);
    const accel::AcceleratorDesign d(m, {3, 3, 6});
    const std::string json = design_to_json(d);
    for (const char *key :
         {"\"robot\": \"hyq\"", "\"kernel\"", "\"total_links\": 12",
          "\"pes_fwd\": 3", "\"size_block\": 6",
          "\"clock_period_ns\": 18", "\"luts\": 507158",
          "\"forward\"", "\"backward\"", "rneaFwd[i=0]"})
        EXPECT_NE(json.find(key), std::string::npos) << key;
    // Braces and brackets balance.
    int braces = 0, brackets = 0;
    for (char c : json) {
        braces += c == '{' ? 1 : (c == '}' ? -1 : 0);
        brackets += c == '[' ? 1 : (c == ']' ? -1 : 0);
    }
    EXPECT_EQ(braces, 0);
    // ROM labels contain brackets; net balance still closes.
    EXPECT_EQ(brackets, 0);
}

// ------------------------------------------------------ SoC co-design ----

TEST(SocCodesign, FrontierTradesLatenciesUnderSharedBudget)
{
    const RobotModel hyq = build_robot(RobotId::kHyq);
    const auto frontier = codesign_pareto(
        {&hyq, sched::KernelKind::kDynamicsGradient},
        {&hyq, sched::KernelKind::kMassMatrix}, accel::vcu118());
    ASSERT_GE(frontier.size(), 2u);
    const double lut_budget = accel::vcu118().luts * 0.8;
    const double dsp_budget = accel::vcu118().dsps * 0.8;
    for (std::size_t k = 0; k < frontier.size(); ++k) {
        EXPECT_LE(frontier[k].total_luts(), lut_budget);
        EXPECT_LE(frontier[k].total_dsps(), dsp_budget);
        if (k > 0) {
            // Strictly increasing first latency, decreasing second.
            EXPECT_GT(frontier[k].first.cycles,
                      frontier[k - 1].first.cycles);
            EXPECT_LT(frontier[k].second.cycles,
                      frontier[k - 1].second.cycles);
        }
    }
}

TEST(SocCodesign, ReportsInfeasiblePairings)
{
    const RobotModel iiwa = build_robot(RobotId::kIiwa);
    const RobotModel hyq = build_robot(RobotId::kHyq);
    EXPECT_TRUE(codesign_pareto(
                    {&iiwa, sched::KernelKind::kDynamicsGradient},
                    {&hyq, sched::KernelKind::kDynamicsGradient},
                    accel::vc707())
                    .empty());
}

TEST(DesignSpace, KernelSweepsDropUnusedBlockKnob)
{
    const RobotModel m = build_robot(RobotId::kIiwa);
    const DesignSpace grad = DesignSpace::sweep(m);
    const DesignSpace crba = DesignSpace::sweep(
        m, accel::default_timing(), sched::KernelKind::kMassMatrix);
    EXPECT_EQ(grad.points().size(), 343u);
    EXPECT_EQ(crba.points().size(), 49u); // block fixed at 1
}

// ---------------------------------------------- memoized sweep (ISSUE 1) --

/** The pre-memoization sweep: one full AcceleratorDesign per knob triple. */
std::vector<DesignPoint>
reference_serial_sweep(const RobotModel &model)
{
    std::vector<DesignPoint> points;
    const std::size_t n = model.num_links();
    for (std::size_t pf = 1; pf <= n; ++pf) {
        for (std::size_t pb = 1; pb <= n; ++pb) {
            for (std::size_t b = 1; b <= n; ++b) {
                const accel::AcceleratorDesign design(model, {pf, pb, b});
                DesignPoint point;
                point.params = design.params();
                point.cycles = design.cycles_no_pipelining();
                point.latency_us = design.latency_us_no_pipelining();
                point.resources = design.resources();
                points.push_back(point);
            }
        }
    }
    return points;
}

void
expect_points_identical(const std::vector<DesignPoint> &a,
                        const std::vector<DesignPoint> &b,
                        const char *robot)
{
    ASSERT_EQ(a.size(), b.size()) << robot;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_TRUE(a[i].params == b[i].params)
            << robot << " point " << i << ": " << a[i].params.to_string()
            << " vs " << b[i].params.to_string();
        EXPECT_EQ(a[i].cycles, b[i].cycles) << robot << " point " << i;
        EXPECT_EQ(a[i].latency_us, b[i].latency_us)
            << robot << " point " << i;
        EXPECT_EQ(a[i].resources.luts, b[i].resources.luts)
            << robot << " point " << i;
        EXPECT_EQ(a[i].resources.dsps, b[i].resources.dsps)
            << robot << " point " << i;
    }
}

TEST(SweepEquivalence, MatchesSerialReferencePointForPoint)
{
    // The memoized + threaded sweep must be a pure optimization: identical
    // (params, cycles, latency_us, resources) per point, in identical
    // order, while invoking the list scheduler O(n) times instead of
    // O(n^3) (the issue's bound is O(n^2); the sweep needs no pipelined
    // schedules at all).
    for (RobotId id : {RobotId::kIiwa, RobotId::kHyq, RobotId::kBaxter}) {
        const RobotModel m = build_robot(id);
        const std::size_t n = m.num_links();

        const std::uint64_t list0 = sched::list_scheduler_invocations();
        const std::uint64_t block0 = sched::block_schedule_invocations();
        const DesignSpace space = DesignSpace::sweep(m);
        const std::uint64_t list_calls =
            sched::list_scheduler_invocations() - list0;
        const std::uint64_t block_calls =
            sched::block_schedule_invocations() - block0;

        EXPECT_LE(list_calls, n * n + 2 * n) << robot_name(id);
        EXPECT_LE(block_calls, n) << robot_name(id);

        expect_points_identical(space.points(), reference_serial_sweep(m),
                                robot_name(id));
    }
}

TEST(SweepEquivalence, SweepIsDeterministicAcrossRuns)
{
    const RobotModel m = build_robot(RobotId::kBaxter);
    const DesignSpace first = DesignSpace::sweep(m);
    const DesignSpace second = DesignSpace::sweep(m);
    expect_points_identical(first.points(), second.points(), "baxter");
}

TEST(SweepEquivalence, ThreadedPrecomputeMatchesLazySchedules)
{
    // Force a multi-worker pool even on single-core hosts; this test is
    // the TSan gate for the sweep thread pool (build with
    // -DROBOSHAPE_SANITIZE=thread).
    const RobotModel m = build_robot(RobotId::kHyqWithArm);
    SweepContext threaded(m);
    threaded.precompute_stage_schedules(/*threads=*/4);
    SweepContext lazy(m);
    for (std::size_t k = 1; k <= m.num_links(); ++k) {
        EXPECT_EQ(threaded.forward(k).makespan, lazy.forward(k).makespan);
        EXPECT_EQ(threaded.forward(k).forward_rom,
                  lazy.forward(k).forward_rom);
        EXPECT_EQ(threaded.backward(k).makespan,
                  lazy.backward(k).makespan);
        EXPECT_EQ(threaded.backward(k).backward_rom,
                  lazy.backward(k).backward_rom);
        EXPECT_EQ(threaded.block_multiply(k).makespan,
                  lazy.block_multiply(k).makespan);
        EXPECT_EQ(threaded.block_multiply(k).executed_tiles,
                  lazy.block_multiply(k).executed_tiles);
    }
}

TEST(SweepEquivalence, ContextDesignMatchesFromScratchConstruction)
{
    const RobotModel m = build_robot(RobotId::kJaco2);
    SweepContext ctx(m);
    for (const accel::AcceleratorParams params :
         {accel::AcceleratorParams{1, 1, 1},
          accel::AcceleratorParams{3, 2, 4},
          accel::AcceleratorParams{12, 12, 12}}) {
        const accel::AcceleratorDesign cheap = ctx.design(params);
        const accel::AcceleratorDesign scratch(m, params);
        EXPECT_EQ(cheap.cycles_no_pipelining(),
                  scratch.cycles_no_pipelining());
        EXPECT_EQ(cheap.cycles_pipelined(), scratch.cycles_pipelined());
        EXPECT_EQ(cheap.cycles_overlapped(), scratch.cycles_overlapped());
        EXPECT_EQ(cheap.clock_period_ns(), scratch.clock_period_ns());
        EXPECT_EQ(cheap.resources().luts, scratch.resources().luts);
        EXPECT_EQ(cheap.resources().dsps, scratch.resources().dsps);
        EXPECT_EQ(cheap.forward_stage().forward_rom,
                  scratch.forward_stage().forward_rom);
        EXPECT_EQ(cheap.pipelined().makespan,
                  scratch.pipelined().makespan);
    }
}

TEST(DesignSpace, Pareto3dMatchesQuadraticReference)
{
    // The sort-then-sweep frontier must reproduce the all-pairs dominance
    // check exactly — same set, same order, duplicates included.
    std::vector<RobotModel> models;
    models.push_back(build_robot(RobotId::kHyq));
    models.push_back(build_robot(RobotId::kJaco3));
    models.push_back(topology::make_star(3, 3, "star3x3"));
    for (const RobotModel &m : models) {
        const DesignSpace space = DesignSpace::sweep(m);
        std::vector<DesignPoint> reference;
        for (const DesignPoint &p : space.points()) {
            bool dominated = false;
            for (const DesignPoint &q : space.points()) {
                if (q.cycles <= p.cycles &&
                    q.resources.luts <= p.resources.luts &&
                    q.resources.dsps <= p.resources.dsps &&
                    (q.cycles < p.cycles ||
                     q.resources.luts < p.resources.luts ||
                     q.resources.dsps < p.resources.dsps)) {
                    dominated = true;
                    break;
                }
            }
            if (!dominated)
                reference.push_back(p);
        }
        const auto frontier = space.pareto_frontier_3d();
        ASSERT_EQ(frontier.size(), reference.size()) << m.name();
        for (std::size_t i = 0; i < frontier.size(); ++i) {
            EXPECT_TRUE(frontier[i].params == reference[i].params)
                << m.name() << " index " << i;
        }
    }
}

TEST(DesignSpace, Pareto3dContains2dFrontier)
{
    const RobotModel m = build_robot(RobotId::kHyq);
    const DesignSpace space = DesignSpace::sweep(m);
    const auto p2 = space.pareto_frontier();
    const auto p3 = space.pareto_frontier_3d();
    for (const DesignPoint &p : p2) {
        bool found = false;
        for (const DesignPoint &q : p3)
            if (q.params == p.params)
                found = true;
        EXPECT_TRUE(found) << p.params.to_string();
    }
}

} // namespace
} // namespace core
} // namespace roboshape
