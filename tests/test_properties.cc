/**
 * @file
 * Cross-module property and integration tests: invariants that tie two or
 * more subsystems together, plus edge cases not covered by the per-module
 * suites.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "accel/power_model.h"
#include "dynamics/aba.h"
#include "dynamics/crba.h"
#include "dynamics/fd_derivatives.h"
#include "dynamics/finite_diff.h"
#include "dynamics/rnea.h"
#include "dynamics/kinematics.h"
#include "dynamics/robot_state.h"
#include "io/link_model.h"
#include "io/payload.h"
#include "linalg/blocked.h"
#include "linalg/factorization.h"
#include "linalg/random.h"
#include "sched/task_graph.h"
#include "topology/parametric_robots.h"
#include "topology/robot_library.h"
#include "topology/urdf_parser.h"
#include "topology/xml.h"

namespace roboshape {
namespace {

using linalg::Matrix;
using linalg::Vector;
using topology::RobotId;
using topology::RobotModel;
using topology::TopologyInfo;

// ----------------------------------------------------------- linalg ----

TEST(LinalgProperties, LdltSolvesEveryRobotMassMatrix)
{
    for (RobotId id : topology::all_robots()) {
        const RobotModel m = topology::build_robot(id);
        for (std::uint32_t seed = 0; seed < 4; ++seed) {
            const auto s = dynamics::random_state(m, 100 + seed);
            const Matrix h = dynamics::crba(m, s.q);
            const linalg::Ldlt f(h);
            ASSERT_TRUE(f.ok());
            const Vector x = f.solve(s.tau);
            EXPECT_LT(linalg::max_abs_diff(h * x, s.tau), 1e-8);
        }
    }
}

TEST(LinalgProperties, BlockedMultiplyStatsAreConsistent)
{
    // block_macs + block_nops covers the full tile cube, and scalar MACs
    // never exceed macs * block^3.
    const Matrix a = linalg::random_matrix(13, 13, 5);
    const Matrix b = linalg::random_matrix(13, 13, 6);
    for (std::size_t block : {2u, 3u, 5u, 7u}) {
        linalg::BlockMultiplyStats stats;
        linalg::blocked_multiply(a, b, block, &stats);
        const std::size_t dim = (13 + block - 1) / block;
        EXPECT_EQ(stats.total_block_products(), dim * dim * dim) << block;
        EXPECT_LE(stats.scalar_macs, stats.block_macs * block * block *
                                         block)
            << block;
    }
}

TEST(LinalgProperties, LuDeterminantMatchesPivotSigns)
{
    // det(P A) sign bookkeeping: permuting two rows flips the sign.
    Matrix a = linalg::random_spd_matrix(5, 9);
    const double det = linalg::Lu(a).determinant();
    EXPECT_GT(det, 0.0); // SPD
    // Swap two rows -> determinant negates.
    for (std::size_t j = 0; j < 5; ++j)
        std::swap(a(0, j), a(1, j));
    EXPECT_NEAR(linalg::Lu(a).determinant(), -det,
                1e-9 * std::abs(det));
}

// -------------------------------------------------------------- xml ----

TEST(XmlProperties, SurvivesDeepNesting)
{
    std::string open, close;
    for (int i = 0; i < 200; ++i) {
        open += "<n" + std::to_string(i) + ">";
        close = "</n" + std::to_string(i) + ">" + close;
    }
    const auto root = topology::parse_xml(open + close);
    const topology::XmlElement *cur = root.get();
    int depth = 0;
    while (!cur->children.empty()) {
        cur = cur->children[0].get();
        ++depth;
    }
    EXPECT_EQ(depth, 199);
}

TEST(XmlProperties, WhitespaceTolerance)
{
    const auto root = topology::parse_xml(
        "  \n\t<a   b = \"1\"   c='2'  >\n\n  <d/>\t</a>\n  ");
    EXPECT_EQ(root->attribute("b"), "1");
    EXPECT_EQ(root->attribute("c"), "2");
    EXPECT_EQ(root->children.size(), 1u);
}

// ------------------------------------------------------------- urdf ----

TEST(UrdfProperties, AxisIsNormalizedOnParse)
{
    const char *urdf = R"(
      <robot name="x"><link name="base"/>
        <link name="a"><inertial><mass value="1"/>
          <inertia ixx="0.1" iyy="0.1" izz="0.1"/></inertial></link>
        <joint name="j" type="revolute">
          <parent link="base"/><child link="a"/>
          <axis xyz="0 0 10"/></joint></robot>)";
    const RobotModel m = topology::parse_urdf(urdf);
    EXPECT_NEAR(m.link(0).joint.axis().norm(), 1.0, 1e-12);
}

TEST(UrdfProperties, ChainedFixedJointsFoldTransitively)
{
    // moving -> fixed -> fixed -> moving: both rigid links merge into the
    // first moving link, and the final joint offset accumulates.
    const char *urdf = R"(
      <robot name="x"><link name="base"/>
        <link name="a"><inertial><mass value="1"/>
          <inertia ixx="0.1" iyy="0.1" izz="0.1"/></inertial></link>
        <link name="f1"><inertial><mass value="0.5"/>
          <inertia ixx="0.01" iyy="0.01" izz="0.01"/></inertial></link>
        <link name="f2"><inertial><mass value="0.25"/>
          <inertia ixx="0.01" iyy="0.01" izz="0.01"/></inertial></link>
        <link name="b"><inertial><mass value="1"/>
          <inertia ixx="0.1" iyy="0.1" izz="0.1"/></inertial></link>
        <joint name="j1" type="revolute"><parent link="base"/>
          <child link="a"/><axis xyz="0 0 1"/></joint>
        <joint name="jf1" type="fixed"><parent link="a"/>
          <child link="f1"/><origin xyz="0 0 0.1"/></joint>
        <joint name="jf2" type="fixed"><parent link="f1"/>
          <child link="f2"/><origin xyz="0 0 0.2"/></joint>
        <joint name="j2" type="revolute"><parent link="f2"/>
          <child link="b"/><origin xyz="0 0 0.3"/>
          <axis xyz="0 1 0"/></joint></robot>)";
    const RobotModel m = topology::parse_urdf(urdf);
    ASSERT_EQ(m.num_links(), 2u);
    EXPECT_NEAR(m.link(0).inertia.mass(), 1.75, 1e-12);
    EXPECT_NEAR(m.link(1).x_tree.translation_vector().z, 0.6, 1e-12);
}

TEST(UrdfProperties, ForwardKinematicsSurvivesRoundTrip)
{
    // Beyond mass matrices: poses and Jacobians agree between the
    // programmatic model and its URDF round trip.
    for (RobotId id : {RobotId::kBaxter, RobotId::kPepper}) {
        const RobotModel direct = topology::build_robot(id);
        const RobotModel parsed =
            topology::parse_urdf(topology::robot_urdf(id));
        const auto s = dynamics::random_state(direct, 8);
        const auto fk_a = dynamics::forward_kinematics(direct, s.q);
        const auto fk_b = dynamics::forward_kinematics(parsed, s.q);
        for (std::size_t i = 0; i < direct.num_links(); ++i) {
            EXPECT_LT((fk_a.base_to_link[i].to_matrix() -
                       fk_b.base_to_link[i].to_matrix())
                          .max_abs(),
                      1e-10);
        }
    }
}

// ---------------------------------------------------------- dynamics ----

TEST(DynamicsProperties, GradientsVanishAtEquilibrium)
{
    // A hanging chain at rest under gravity compensation: qdd == 0 and
    // dqdd/dqd's gravity-independent structure still holds; the
    // acceleration stays zero under tau perturbations mapped through
    // M^-1.
    const RobotModel m = topology::make_serial_chain(4);
    const TopologyInfo topo(m);
    const std::size_t n = m.num_links();
    const Vector q = dynamics::random_state(m, 3).q;
    const Vector zero(n);
    const Vector tau_hold = dynamics::rnea(m, q, zero, zero);
    const auto g =
        dynamics::forward_dynamics_gradients(m, topo, q, zero, tau_hold);
    EXPECT_NEAR(g.qdd.max_abs(), 0.0, 1e-8);
    // At zero velocity the velocity partial reduces to -M^-1 * dC/dqd
    // with C linear in qd near zero; finite-difference cross-check.
    const Matrix fd = dynamics::fd_dqdd_dqd(m, q, zero, tau_hold);
    EXPECT_LT(linalg::max_abs_diff(g.dqdd_dqd, fd), 5e-5);
}

TEST(DynamicsProperties, MassMatrixInvariantUnderVelocity)
{
    // M(q) must not depend on qd; CRBA only reads q.
    const RobotModel m = topology::build_robot(RobotId::kJaco3);
    const auto s1 = dynamics::random_state(m, 10);
    const Matrix h = dynamics::crba(m, s1.q);
    // Same q, different velocities through the full gradient pipeline.
    const TopologyInfo topo(m);
    const auto g1 = dynamics::forward_dynamics_gradients(m, topo, s1.q,
                                                         s1.qd, s1.tau);
    const auto s2 = dynamics::random_state(m, 11);
    const auto g2 = dynamics::forward_dynamics_gradients(m, topo, s1.q,
                                                         s2.qd, s1.tau);
    EXPECT_LT(linalg::max_abs_diff(g1.mass, h), 1e-12);
    EXPECT_LT(linalg::max_abs_diff(g1.mass, g2.mass), 1e-12);
}

TEST(DynamicsProperties, ComStaysPutWithoutExternalForces)
{
    // Free-floating approximation sanity: for a fixed-base robot this
    // checks instead that the COM moves continuously (no jumps) during a
    // short passive swing.
    const RobotModel m = topology::build_robot(RobotId::kIiwa);
    const std::size_t n = m.num_links();
    Vector q = dynamics::random_state(m, 5).q;
    Vector qd(n);
    const Vector tau(n);
    auto prev = dynamics::center_of_mass(m, q);
    const double dt = 1e-4;
    for (int k = 0; k < 50; ++k) {
        const Vector qdd = dynamics::aba(m, q, qd, tau);
        for (std::size_t i = 0; i < n; ++i) {
            q[i] += qd[i] * dt;
            qd[i] += qdd[i] * dt;
        }
        const auto com = dynamics::center_of_mass(m, q);
        EXPECT_LT((com - prev).norm(), 0.01); // continuous motion
        prev = com;
    }
}

// ---------------------------------------------------------------- io ----

TEST(IoProperties, PayloadScalesQuadraticallyInLinks)
{
    const auto p1 = io::dense_payload(10);
    const auto p2 = io::dense_payload(20);
    EXPECT_EQ(p2.matrix_bits, 4 * p1.matrix_bits);
    EXPECT_EQ(p2.vector_bits, 2 * p1.vector_bits);
}

TEST(IoProperties, CompressionBoundedByLimbCount)
{
    // For a star with L limbs the mass matrix is 1/L dense, so matrix
    // compression approaches L but the per-link vectors cap the total.
    const RobotModel star = topology::make_star(10, 6);
    const TopologyInfo topo(star);
    const double ratio = io::compression_ratio(topo);
    EXPECT_GT(ratio, 5.0);
    EXPECT_LT(ratio, 10.0);
}

TEST(IoProperties, RoundtripMonotoneInStepsAndPayload)
{
    const auto &link = io::fpga_link_gen1();
    const double a = io::roundtrip_us(link, 1000, 1000, 1, 5.0);
    const double b = io::roundtrip_us(link, 1000, 1000, 8, 5.0);
    const double c = io::roundtrip_us(link, 8000, 8000, 1, 5.0);
    EXPECT_GT(b, a);
    EXPECT_GT(c, a);
}

// -------------------------------------------------------------- accel ----

TEST(AccelProperties, PowerTimesTimeEqualsEnergy)
{
    const RobotModel m = topology::build_robot(RobotId::kBaxter);
    const accel::AcceleratorDesign d(m, {4, 4, 4});
    const accel::PowerReport r = accel::estimate_power(d);
    const double time_s = static_cast<double>(d.cycles_no_pipelining()) *
                          d.clock_period_ns() * 1e-9;
    EXPECT_NEAR(r.avg_power_mw * time_s * 1e3, r.energy_uj,
                1e-6 * r.energy_uj);
    EXPECT_NEAR(r.avg_power_gated_mw * time_s * 1e3, r.energy_gated_uj,
                1e-6 * r.energy_gated_uj);
}

TEST(AccelProperties, EveryKnobPointProducesValidSchedules)
{
    // Exhaustive schedule validity over iiwa's full knob cube.
    const RobotModel m = topology::build_robot(RobotId::kIiwa);
    const TopologyInfo topo(m);
    const sched::TaskGraph g(topo);
    for (std::size_t pf = 1; pf <= 7; ++pf) {
        for (std::size_t pb = 1; pb <= 7; ++pb) {
            const auto joint = sched::schedule_pipelined(
                g, pf, pb, accel::default_timing().traversal);
            ASSERT_EQ(validate_schedule(g, joint), "")
                << pf << "," << pb;
        }
    }
}

TEST(AccelProperties, TaskGraphSizeDrivesGradientWorkQuadratically)
{
    // Gradient backward tasks grow ~N^2 on chains — the paper's pattern-1
    // scaling statement, checked on generated chains.
    std::size_t prev = 0;
    for (std::size_t n : {8u, 16u, 32u}) {
        const RobotModel chain = topology::make_serial_chain(n);
        const TopologyInfo topo(chain);
        const sched::TaskGraph g(topo);
        const std::size_t bwd =
            g.tasks_of_type(sched::TaskType::kGradBackward).size();
        // Exact: sum_j (subtree + depth - 1) = sum_j n = n^2.
        EXPECT_EQ(bwd, n * n);
        EXPECT_GT(bwd, prev);
        prev = bwd;
    }
}

} // namespace
} // namespace roboshape
