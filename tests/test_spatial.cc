/**
 * @file
 * Unit and property tests for the spatial (6-D) algebra.
 */

#include <gtest/gtest.h>

#include <random>

#include "spatial/joint.h"
#include "spatial/spatial_inertia.h"
#include "spatial/spatial_matrix.h"
#include "spatial/spatial_transform.h"
#include "spatial/spatial_vector.h"
#include "spatial/vec3.h"

namespace roboshape {
namespace spatial {
namespace {

Vec3
random_vec3(std::mt19937 &rng)
{
    std::uniform_real_distribution<double> d(-1.0, 1.0);
    return {d(rng), d(rng), d(rng)};
}

SpatialVector
random_spatial(std::mt19937 &rng)
{
    return {random_vec3(rng), random_vec3(rng)};
}

SpatialTransform
random_transform(std::mt19937 &rng)
{
    std::uniform_real_distribution<double> d(-2.0, 2.0);
    const Vec3 axis = random_vec3(rng).normalized();
    return SpatialTransform(Mat3::coordinate_rotation(axis, d(rng)),
                            random_vec3(rng));
}

double
diff(const SpatialVector &a, const SpatialVector &b)
{
    return (a - b).max_abs();
}

TEST(Vec3, CrossProductIdentities)
{
    const Vec3 x = Vec3::unit_x(), y = Vec3::unit_y(), z = Vec3::unit_z();
    EXPECT_NEAR((x.cross(y) - z).norm(), 0.0, 1e-15);
    EXPECT_NEAR((y.cross(z) - x).norm(), 0.0, 1e-15);
    EXPECT_NEAR((z.cross(x) - y).norm(), 0.0, 1e-15);

    std::mt19937 rng(1);
    const Vec3 a = random_vec3(rng), b = random_vec3(rng);
    EXPECT_NEAR(a.cross(b).dot(a), 0.0, 1e-14);
    EXPECT_NEAR((a.cross(b) + b.cross(a)).norm(), 0.0, 1e-15);
}

TEST(Mat3, SkewEncodesCrossProduct)
{
    std::mt19937 rng(2);
    const Vec3 a = random_vec3(rng), b = random_vec3(rng);
    EXPECT_NEAR((Mat3::skew(a) * b - a.cross(b)).norm(), 0.0, 1e-15);
}

TEST(Mat3, CoordinateRotationIsOrthonormal)
{
    std::mt19937 rng(3);
    for (int trial = 0; trial < 10; ++trial) {
        const Vec3 axis = random_vec3(rng).normalized();
        std::uniform_real_distribution<double> d(-3.14, 3.14);
        const Mat3 e = Mat3::coordinate_rotation(axis, d(rng));
        const Mat3 ete = e.transposed() * e;
        const Mat3 id = Mat3::identity();
        for (std::size_t r = 0; r < 3; ++r)
            for (std::size_t c = 0; c < 3; ++c)
                EXPECT_NEAR(ete(r, c), id(r, c), 1e-12);
    }
}

TEST(Mat3, CoordinateRotationAboutZ)
{
    // Coordinate transform: a point on +x, in a frame rotated +90deg about
    // z, has coordinates on -y.
    const Mat3 e = Mat3::coordinate_rotation(Vec3::unit_z(), M_PI / 2.0);
    const Vec3 p = e * Vec3::unit_x();
    EXPECT_NEAR(p.x, 0.0, 1e-12);
    EXPECT_NEAR(p.y, -1.0, 1e-12);
    EXPECT_NEAR(p.z, 0.0, 1e-12);
}

TEST(Mat3, AxisIsRotationInvariant)
{
    std::mt19937 rng(4);
    const Vec3 axis = random_vec3(rng).normalized();
    const Mat3 e = Mat3::coordinate_rotation(axis, 1.234);
    EXPECT_NEAR((e * axis - axis).norm(), 0.0, 1e-12);
}

TEST(SpatialVector, CrossMotionAntisymmetry)
{
    std::mt19937 rng(5);
    const SpatialVector m1 = random_spatial(rng), m2 = random_spatial(rng);
    EXPECT_NEAR(diff(cross_motion(m1, m2), -cross_motion(m2, m1)), 0.0,
                1e-14);
    EXPECT_NEAR(cross_motion(m1, m1).max_abs(), 0.0, 1e-14);
}

TEST(SpatialVector, CrossForceIsDualOfCrossMotion)
{
    // (v x* f) . m == -f . (v x m)
    std::mt19937 rng(6);
    const SpatialVector v = random_spatial(rng);
    const SpatialVector f = random_spatial(rng);
    const SpatialVector m = random_spatial(rng);
    EXPECT_NEAR(cross_force(v, f).dot(m), -f.dot(cross_motion(v, m)), 1e-13);
}

TEST(SpatialTransform, ApplyMatchesMatrixForm)
{
    std::mt19937 rng(7);
    for (int trial = 0; trial < 10; ++trial) {
        const SpatialTransform x = random_transform(rng);
        const SpatialVector v = random_spatial(rng);
        EXPECT_NEAR(diff(x.apply(v), x.to_matrix() * v), 0.0, 1e-13);
        EXPECT_NEAR(diff(x.apply_to_force(v), x.to_force_matrix() * v), 0.0,
                    1e-13);
    }
}

TEST(SpatialTransform, ForceMatrixIsInverseTranspose)
{
    std::mt19937 rng(8);
    const SpatialTransform x = random_transform(rng);
    const SpatialMatrix xf = x.to_force_matrix();
    const SpatialMatrix xit = x.inverse().to_matrix().transposed();
    EXPECT_NEAR((xf - xit).max_abs(), 0.0, 1e-13);
}

TEST(SpatialTransform, InverseUndoesApply)
{
    std::mt19937 rng(9);
    const SpatialTransform x = random_transform(rng);
    const SpatialVector v = random_spatial(rng);
    EXPECT_NEAR(diff(x.apply_inverse(x.apply(v)), v), 0.0, 1e-13);
    EXPECT_NEAR(diff(x.inverse().apply(x.apply(v)), v), 0.0, 1e-13);
}

TEST(SpatialTransform, TransposeForceMatchesMatrixTranspose)
{
    std::mt19937 rng(10);
    const SpatialTransform x = random_transform(rng);
    const SpatialVector f = random_spatial(rng);
    EXPECT_NEAR(diff(x.apply_transpose_to_force(f),
                     x.to_matrix().transposed() * f),
                0.0, 1e-13);
}

TEST(SpatialTransform, CompositionMatchesMatrixProduct)
{
    std::mt19937 rng(11);
    const SpatialTransform x1 = random_transform(rng);
    const SpatialTransform x2 = random_transform(rng);
    const SpatialMatrix composed = (x2 * x1).to_matrix();
    const SpatialMatrix product = x2.to_matrix() * x1.to_matrix();
    EXPECT_NEAR((composed - product).max_abs(), 0.0, 1e-13);
}

TEST(SpatialTransform, JointTransformDerivativeIdentity)
{
    // d(X(q) u)/dq == (X u) x S — the identity the analytical RNEA
    // derivatives rest on, checked against a central difference.
    std::mt19937 rng(12);
    for (JointType type : {JointType::kRevolute, JointType::kPrismatic}) {
        for (int trial = 0; trial < 8; ++trial) {
            const Vec3 axis = random_vec3(rng).normalized();
            const JointModel joint(type, axis);
            std::uniform_real_distribution<double> d(-2.0, 2.0);
            const double q = d(rng);
            const SpatialVector u = random_spatial(rng);
            const SpatialVector s = joint.motion_subspace();

            const double eps = 1e-7;
            const SpatialVector numeric =
                (joint.transform(q + eps).apply(u) -
                 joint.transform(q - eps).apply(u)) *
                (1.0 / (2.0 * eps));
            const SpatialVector analytic =
                cross_motion(joint.transform(q).apply(u), s);
            EXPECT_NEAR(diff(numeric, analytic), 0.0, 1e-6)
                << to_string(type) << " trial " << trial;
        }
    }
}

TEST(SpatialTransform, TransposeForceDerivativeIdentity)
{
    // d(X^T f)/dq == X^T (S x* f).
    std::mt19937 rng(13);
    const Vec3 axis = random_vec3(rng).normalized();
    const JointModel joint(JointType::kRevolute, axis);
    const double q = 0.7;
    const SpatialVector f = random_spatial(rng);
    const SpatialVector s = joint.motion_subspace();

    const double eps = 1e-7;
    const SpatialVector numeric =
        (joint.transform(q + eps).apply_transpose_to_force(f) -
         joint.transform(q - eps).apply_transpose_to_force(f)) *
        (1.0 / (2.0 * eps));
    const SpatialVector analytic =
        joint.transform(q).apply_transpose_to_force(cross_force(s, f));
    EXPECT_NEAR(diff(numeric, analytic), 0.0, 1e-6);
}

TEST(SpatialInertia, ApplyMatchesMatrixForm)
{
    std::mt19937 rng(14);
    const SpatialInertia inertia = SpatialInertia::from_mass_com_inertia(
        2.5, {0.1, -0.05, 0.2},
        [] {
            Mat3 ic;
            ic(0, 0) = 0.4;
            ic(1, 1) = 0.5;
            ic(2, 2) = 0.3;
            return ic;
        }());
    const SpatialVector v = random_spatial(rng);
    EXPECT_NEAR(diff(inertia.apply(v), inertia.to_matrix() * v), 0.0, 1e-13);
}

TEST(SpatialInertia, MatrixRoundTrip)
{
    const SpatialInertia inertia = SpatialInertia::from_mass_com_inertia(
        1.5, {0.2, 0.1, -0.3}, Mat3::identity() * 0.25);
    const SpatialInertia back = SpatialInertia::from_matrix(
        inertia.to_matrix());
    EXPECT_NEAR(back.mass(), inertia.mass(), 1e-14);
    EXPECT_NEAR((back.h() - inertia.h()).norm(), 0.0, 1e-14);
}

TEST(SpatialInertia, ExpressedInParentMatchesConjugation)
{
    std::mt19937 rng(15);
    const SpatialInertia inertia = SpatialInertia::from_mass_com_inertia(
        3.0, random_vec3(rng), Mat3::identity() * 0.2);
    const SpatialTransform x = random_transform(rng);
    const SpatialMatrix expected =
        x.to_matrix().transposed() * inertia.to_matrix() * x.to_matrix();
    const SpatialMatrix got = inertia.expressed_in_parent(x).to_matrix();
    EXPECT_NEAR((expected - got).max_abs(), 0.0, 1e-12);
}

TEST(SpatialInertia, KineticEnergyInvariantUnderTransform)
{
    // 0.5 v^T I v must be frame independent.
    std::mt19937 rng(16);
    const SpatialInertia i_child = SpatialInertia::from_mass_com_inertia(
        2.0, random_vec3(rng), Mat3::identity() * 0.3);
    const SpatialTransform x = random_transform(rng); // parent -> child
    const SpatialVector v_parent = random_spatial(rng);
    const SpatialVector v_child = x.apply(v_parent);

    const double e_child = 0.5 * v_child.dot(i_child.apply(v_child));
    const SpatialInertia i_parent = i_child.expressed_in_parent(x);
    const double e_parent = 0.5 * v_parent.dot(i_parent.apply(v_parent));
    EXPECT_NEAR(e_child, e_parent, 1e-12);
}

TEST(Joint, RevoluteSubspaceAndTransform)
{
    const JointModel j(JointType::kRevolute, Vec3::unit_z());
    const SpatialVector s = j.motion_subspace();
    EXPECT_NEAR((s.ang - Vec3::unit_z()).norm(), 0.0, 1e-15);
    EXPECT_NEAR(s.lin.norm(), 0.0, 1e-15);
    EXPECT_EQ(j.dof(), 1);
    // At q = 0 the transform is identity.
    const SpatialVector v{{0.1, 0.2, 0.3}, {0.4, 0.5, 0.6}};
    EXPECT_NEAR(diff(j.transform(0.0).apply(v), v), 0.0, 1e-15);
}

TEST(Joint, PrismaticSubspaceAndTransform)
{
    const JointModel j(JointType::kPrismatic, Vec3::unit_x());
    const SpatialVector s = j.motion_subspace();
    EXPECT_NEAR(s.ang.norm(), 0.0, 1e-15);
    EXPECT_NEAR((s.lin - Vec3::unit_x()).norm(), 0.0, 1e-15);
    const SpatialTransform x = j.transform(2.0);
    EXPECT_NEAR((x.translation_vector() - Vec3{2.0, 0.0, 0.0}).norm(), 0.0,
                1e-15);
}

TEST(Joint, FixedJointHasNoMotion)
{
    const JointModel j;
    EXPECT_EQ(j.dof(), 0);
    EXPECT_NEAR(j.motion_subspace().max_abs(), 0.0, 0.0);
}

TEST(Joint, TypeParsing)
{
    EXPECT_EQ(joint_type_from_string("revolute"), JointType::kRevolute);
    EXPECT_EQ(joint_type_from_string("continuous"), JointType::kRevolute);
    EXPECT_EQ(joint_type_from_string("prismatic"), JointType::kPrismatic);
    EXPECT_EQ(joint_type_from_string("fixed"), JointType::kFixed);
    EXPECT_THROW(joint_type_from_string("floating"), std::invalid_argument);
}

TEST(Joint, AxisIsNormalized)
{
    const JointModel j(JointType::kRevolute, {0.0, 0.0, 5.0});
    EXPECT_NEAR(j.axis().norm(), 1.0, 1e-15);
}

} // namespace
} // namespace spatial
} // namespace roboshape
