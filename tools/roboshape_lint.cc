/**
 * @file
 * roboshape_lint command line driver (docs/STATIC_ANALYSIS.md).
 *
 * Walks src/ tools/ bench/ tests/ examples/ under --root (default: the
 * current directory) and enforces the repo invariants as named lint
 * rules; see tools/lint/lint.h for the catalog.  Exit status: 0 when the
 * tree is clean, 1 when findings were reported, 2 on usage or I/O
 * errors.  `ctest -L lint` runs this over the whole tree and gates zero
 * findings.
 *
 * Usage:
 *   roboshape_lint [--root DIR] [--rule NAME]... [--json PATH]
 *                  [--list-rules] [FILE]...
 *
 * With explicit FILE arguments only those files are scanned (paths are
 * taken relative to --root) and the doc->code direction of
 * counter-name-sync is skipped — a partial scan cannot prove a counter
 * name is unused.
 */

#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace {

std::optional<std::string>
read_file(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--root DIR] [--rule NAME]... [--json PATH]\n"
        "          [--list-rules] [FILE]...\n"
        "Enforces the repo's source invariants (docs/STATIC_ANALYSIS.md).\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using roboshape::lint::Finding;
    using roboshape::lint::LintConfig;
    using roboshape::lint::Linter;

    std::string root = ".";
    std::string json_path;
    LintConfig config;
    std::vector<std::string> explicit_files;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        }
        if (arg == "--list-rules") {
            for (const auto &rule : roboshape::lint::rule_catalog())
                std::printf("%-20s %s\n",
                            std::string(rule.name).c_str(),
                            std::string(rule.summary).c_str());
            return 0;
        }
        if (arg == "--root") {
            if (++i >= argc) {
                std::fprintf(stderr, "error: --root needs a value\n");
                return usage(argv[0]);
            }
            root = argv[i];
            continue;
        }
        if (arg == "--rule") {
            if (++i >= argc) {
                std::fprintf(stderr, "error: --rule needs a value\n");
                return usage(argv[0]);
            }
            if (!roboshape::lint::is_known_rule(argv[i])) {
                std::fprintf(stderr, "error: unknown rule '%s' "
                                     "(--list-rules shows the catalog)\n",
                             argv[i]);
                return 2;
            }
            config.rules.insert(argv[i]);
            continue;
        }
        if (arg == "--json") {
            if (++i >= argc) {
                std::fprintf(stderr, "error: --json needs a value\n");
                return usage(argv[0]);
            }
            json_path = argv[i];
            continue;
        }
        if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "error: unknown option '%s'\n",
                         arg.c_str());
            return usage(argv[0]);
        }
        explicit_files.push_back(arg);
    }

    std::vector<std::string> files;
    if (explicit_files.empty()) {
        files = roboshape::lint::collect_repo_files(root);
        if (files.empty()) {
            std::fprintf(stderr,
                         "error: no lintable files under '%s' "
                         "(is --root the repo checkout?)\n",
                         root.c_str());
            return 2;
        }
    } else {
        files = explicit_files;
        // A partial scan cannot prove a doc catalog entry unused.
        config.doc_to_code = false;
    }

    Linter linter(config);

    const std::string doc_rel = "docs/OBSERVABILITY.md";
    if (const auto doc = read_file(root + "/" + doc_rel))
        linter.set_counter_doc(doc_rel, *doc);

    for (const std::string &rel : files) {
        const auto content = read_file(root + "/" + rel);
        if (!content) {
            std::fprintf(stderr, "error: cannot read '%s/%s'\n",
                         root.c_str(), rel.c_str());
            return 2;
        }
        linter.add_file(rel, *content);
    }

    const std::vector<Finding> findings = linter.finish();
    for (const Finding &f : findings)
        std::fprintf(stderr, "%s\n", f.to_string().c_str());

    if (!json_path.empty()) {
        std::ofstream out(json_path, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "error: cannot write '%s'\n",
                         json_path.c_str());
            return 2;
        }
        out << roboshape::lint::findings_to_json(findings) << "\n";
    }

    std::fprintf(stderr, "roboshape_lint: %zu file(s), %zu finding(s)\n",
                 files.size(), findings.size());
    return findings.empty() ? 0 : 1;
}
