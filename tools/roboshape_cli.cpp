/**
 * @file
 * The `roboshape` command-line tool: the front door of the generator flow.
 *
 *   roboshape info  <robot.urdf>                 topology + Table-3 metrics
 *   roboshape gen   <robot.urdf> [options]       generate + report
 *   roboshape sweep <robot.urdf> [options]       design space + Pareto CSV
 *   roboshape rtl   <robot.urdf> <out_dir> [...] emit Verilog bundle
 *   roboshape trace <robot.urdf|--robot NAME> [--out t.json]
 *                                                Chrome trace of the schedule
 *   roboshape stats <robot.urdf|--robot NAME> [--out report.json]
 *                                                counter registry snapshot
 *   roboshape serve [--port N] [--threads N] [--queue N]
 *                                                roboshaped HTTP daemon
 *
 * Options:
 *   --platform vcu118|vc707      resource envelope (default vcu118)
 *   --pes-fwd N / --pes-bwd N / --block N   explicit knob caps
 *   --kernel gradient|crba|kinematics       kernel family (default gradient)
 *   --timeline                   print the ASCII schedule timeline (gen)
 *   --robot NAME                 library robot instead of a URDF file
 *                                (iiwa, HyQ, Baxter, ... — trace/stats)
 *   --out PATH                   artifact destination (trace/stats)
 *   --format text|prometheus     stats: human table or Prometheus text
 *                                exposition (same encoder as GET /metrics)
 *   --port N                     serve: listen port (0 = ephemeral)
 *   --threads N / --queue N      serve: worker pool / admission queue
 *   --access-log PATH            serve: JSON-lines access log
 *   --slow-ms N                  serve: slow-request threshold (default 1000)
 *
 * While serving, SIGUSR1 dumps the flight recorder (the last N request
 * summaries, service/flight_recorder.h) to stderr without stopping.
 *
 * Every numeric flag goes through core::parse_uint — "4abc", "-1", and
 * overflowing values are hard errors naming the flag, never silent
 * truncation (docs/SERVICE.md covers the bug class).
 */

#include <algorithm>
#include <cctype>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "accel/sim_engine.h"
#include "codegen/verilog_emitter.h"
#include "core/design_space.h"
#include "core/design_export.h"
#include "core/generator.h"
#include "core/parse_uint.h"
#include "core/sweep_context.h"
#include "dynamics/fd_derivatives.h"
#include "dynamics/robot_state.h"
#include "io/payload.h"
#include "obs/json.h"
#include "obs/prometheus.h"
#include "obs/registry.h"
#include "obs/run_report.h"
#include "obs/trace_export.h"
#include "sched/timeline.h"
#include "service/flight_recorder.h"
#include "service/server.h"
#include "topology/robot_library.h"
#include "topology/topology_info.h"
#include "topology/urdf_parser.h"

namespace {

using namespace roboshape;

struct CliOptions
{
    std::string command;
    std::string urdf_path;
    std::string out_dir;
    std::string robot;    ///< Library robot name (trace/stats).
    std::string out_path; ///< --out artifact path (trace/stats).
    std::string format = "text"; ///< stats: "text" or "prometheus".
    std::string access_log_path; ///< serve: JSON-lines access log.
    const accel::FpgaPlatform *platform = &accel::vcu118();
    core::GeneratorConstraints constraints;
    sched::KernelKind kernel = sched::KernelKind::kDynamicsGradient;
    bool timeline = false;
    bool json = false;
    std::size_t port = 8080;      ///< serve: listen port (0 = ephemeral).
    std::size_t threads = 4;      ///< serve: worker pool size.
    std::size_t queue = 64;       ///< serve: admission-queue capacity.
    std::size_t slow_ms = 1000;   ///< serve: slow-request threshold (ms).
};

int
usage()
{
    std::fprintf(stderr,
                 "usage: roboshape <info|gen|sweep|rtl|trace|stats|serve> "
                 "<robot.urdf> [out_dir] [--platform vcu118|vc707]\n"
                 "                 [--pes-fwd N] [--pes-bwd N] [--block N] "
                 "[--kernel gradient|crba|kinematics]\n"
                 "                 [--timeline] [--json] [--robot NAME] "
                 "[--out PATH] [--format text|prometheus]\n"
                 "                 [--port N] [--threads N] [--queue N] "
                 "[--access-log PATH] [--slow-ms N]\n");
    return 2;
}

/**
 * Strict numeric-flag parse via core::parse_uint.  Failures name the
 * flag and the offending token on stderr — "roboshape gen x.urdf
 * --pes-fwd 4abc" must die loudly, not run with 4 PEs.
 */
std::optional<std::size_t>
parse_flag_uint(const std::string &flag, const char *value,
                std::uint64_t min, std::uint64_t max)
{
    if (!value) {
        std::fprintf(stderr, "error: %s requires a value\n", flag.c_str());
        return std::nullopt;
    }
    const std::optional<std::uint64_t> parsed =
        core::parse_uint(value, min, max);
    if (!parsed) {
        std::fprintf(stderr,
                     "error: invalid value '%s' for %s (expected an "
                     "unsigned integer in [%llu, %llu])\n",
                     value, flag.c_str(),
                     static_cast<unsigned long long>(min),
                     static_cast<unsigned long long>(max));
        return std::nullopt;
    }
    return static_cast<std::size_t>(*parsed);
}

std::optional<CliOptions>
parse_args(int argc, char **argv)
{
    if (argc < 2)
        return std::nullopt;
    CliOptions opt;
    opt.command = argv[1];
    const bool known_command =
        opt.command == "info" || opt.command == "gen" ||
        opt.command == "sweep" || opt.command == "rtl" ||
        opt.command == "trace" || opt.command == "stats" ||
        opt.command == "serve";
    if (!known_command) {
        std::fprintf(stderr, "error: unknown command '%s'\n",
                     opt.command.c_str());
        return std::nullopt;
    }
    // trace/stats take --robot NAME in place of the URDF positional, and
    // serve takes no robot at all; for them argv[2] is only a path when
    // it is not an option.
    const bool positional_optional = opt.command == "trace" ||
                                     opt.command == "stats" ||
                                     opt.command == "serve";
    int first = 2;
    if (argc >= 3 && argv[2][0] != '-') {
        opt.urdf_path = argv[2];
        first = 3;
    } else if (!positional_optional) {
        std::fprintf(stderr,
                     "error: command '%s' requires a <robot.urdf> path\n",
                     opt.command.c_str());
        return std::nullopt;
    }
    int positional = 0;
    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        const auto knob = [&](std::uint64_t min, std::uint64_t max) {
            return parse_flag_uint(arg, next(), min, max);
        };
        if (arg == "--platform") {
            const char *v = next();
            if (!v) {
                std::fprintf(stderr, "error: --platform requires a value\n");
                return std::nullopt;
            }
            if (std::strcmp(v, "vcu118") == 0) {
                opt.platform = &accel::vcu118();
            } else if (std::strcmp(v, "vc707") == 0) {
                opt.platform = &accel::vc707();
            } else {
                std::fprintf(stderr,
                             "error: unknown platform '%s' (expected "
                             "vcu118|vc707)\n",
                             v);
                return std::nullopt;
            }
        } else if (arg == "--pes-fwd") {
            const auto v = knob(1, 4096);
            if (!v)
                return std::nullopt;
            opt.constraints.max_pes_fwd = *v;
        } else if (arg == "--pes-bwd") {
            const auto v = knob(1, 4096);
            if (!v)
                return std::nullopt;
            opt.constraints.max_pes_bwd = *v;
        } else if (arg == "--block") {
            const auto v = knob(1, 4096);
            if (!v)
                return std::nullopt;
            opt.constraints.max_block_size = *v;
        } else if (arg == "--port") {
            const auto v = knob(0, 65535);
            if (!v)
                return std::nullopt;
            opt.port = *v;
        } else if (arg == "--threads") {
            const auto v = knob(1, 64);
            if (!v)
                return std::nullopt;
            opt.threads = *v;
        } else if (arg == "--queue") {
            const auto v = knob(1, 4096);
            if (!v)
                return std::nullopt;
            opt.queue = *v;
        } else if (arg == "--slow-ms") {
            const auto v = knob(1, 3600000);
            if (!v)
                return std::nullopt;
            opt.slow_ms = *v;
        } else if (arg == "--access-log") {
            const char *v = next();
            if (!v) {
                std::fprintf(stderr,
                             "error: --access-log requires a value\n");
                return std::nullopt;
            }
            opt.access_log_path = v;
        } else if (arg == "--format") {
            const char *v = next();
            if (!v) {
                std::fprintf(stderr, "error: --format requires a value\n");
                return std::nullopt;
            }
            if (std::strcmp(v, "text") != 0 &&
                std::strcmp(v, "prometheus") != 0) {
                std::fprintf(stderr,
                             "error: unknown format '%s' (expected "
                             "text|prometheus)\n",
                             v);
                return std::nullopt;
            }
            opt.format = v;
        } else if (arg == "--kernel") {
            const char *v = next();
            if (!v) {
                std::fprintf(stderr, "error: --kernel requires a value\n");
                return std::nullopt;
            }
            if (std::strcmp(v, "gradient") == 0) {
                opt.kernel = sched::KernelKind::kDynamicsGradient;
            } else if (std::strcmp(v, "crba") == 0) {
                opt.kernel = sched::KernelKind::kMassMatrix;
            } else if (std::strcmp(v, "kinematics") == 0) {
                opt.kernel = sched::KernelKind::kForwardKinematics;
            } else {
                std::fprintf(stderr,
                             "error: unknown kernel '%s' (expected "
                             "gradient|crba|kinematics)\n",
                             v);
                return std::nullopt;
            }
        } else if (arg == "--timeline") {
            opt.timeline = true;
        } else if (arg == "--json") {
            opt.json = true;
        } else if (arg == "--robot") {
            const char *v = next();
            if (!v) {
                std::fprintf(stderr, "error: --robot requires a value\n");
                return std::nullopt;
            }
            opt.robot = v;
        } else if (arg == "--out") {
            const char *v = next();
            if (!v) {
                std::fprintf(stderr, "error: --out requires a value\n");
                return std::nullopt;
            }
            opt.out_path = v;
        } else if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
            std::fprintf(stderr, "error: unknown option '%s'\n",
                         arg.c_str());
            return std::nullopt;
        } else if (positional == 0) {
            opt.out_dir = arg;
            ++positional;
        } else {
            std::fprintf(stderr, "error: unexpected argument '%s'\n",
                         arg.c_str());
            return std::nullopt;
        }
    }
    opt.constraints.platform = opt.platform;
    return opt;
}

int
cmd_info(const topology::RobotModel &model)
{
    const topology::TopologyInfo topo(model);
    const topology::TopologyMetrics m = topo.metrics();
    std::printf("robot: %s\n", model.name().c_str());
    std::printf("  total links       %zu\n", m.total_links);
    std::printf("  max leaf depth    %zu\n", m.max_leaf_depth);
    std::printf("  avg leaf depth    %.2f\n", m.avg_leaf_depth);
    std::printf("  max descendants   %zu\n", m.max_descendants);
    std::printf("  leaf depth stdev  %.2f\n", m.leaf_depth_stdev);
    std::printf("  independent limbs %zu\n", model.base_children().size());
    std::printf("  branch links      %zu\n", topo.branch_links().size());
    std::printf("  mass matrix       %.0f%% sparse, %.2fx sparse-I/O "
                "compression\n",
                topo.mass_matrix_sparsity() * 100.0,
                io::compression_ratio(topo));
    std::printf("  links:\n");
    for (std::size_t i = 0; i < model.num_links(); ++i) {
        const auto &l = model.link(i);
        std::printf("    [%2zu] %-24s parent=%2d joint=%s depth=%zu\n", i,
                    l.name.c_str(), l.parent,
                    spatial::to_string(l.joint.type()), topo.depth(i));
    }
    return 0;
}

int
cmd_gen(const topology::RobotModel &model, const CliOptions &opt)
{
    const core::Generator generator;
    const auto out = generator.from_model(model, opt.constraints);
    if (opt.json) {
        std::fputs(core::design_to_json(out.design).c_str(), stdout);
        return 0;
    }
    std::fputs(out.report.c_str(), stdout);
    if (opt.timeline) {
        std::printf("\nforward-stage timeline:\n%s",
                    sched::render_timeline(out.design.task_graph(),
                                           out.design.forward_stage())
                        .c_str());
        std::printf("\nbackward-stage timeline:\n%s",
                    sched::render_timeline(out.design.task_graph(),
                                           out.design.backward_stage())
                        .c_str());
    }
    return 0;
}

int
cmd_sweep(const topology::RobotModel &model, const CliOptions &opt)
{
    const core::DesignSpace space =
        core::DesignSpace::sweep(model, accel::default_timing(), opt.kernel);
    std::printf("# %zu design points for %s (%s)\n", space.points().size(),
                model.name().c_str(), to_string(opt.kernel));
    std::printf("pes_fwd,pes_bwd,block,cycles,latency_us,luts,dsps,"
                "fits_%s\n",
                opt.platform == &accel::vc707() ? "vc707" : "vcu118");
    for (const core::DesignPoint &p : space.pareto_frontier()) {
        std::printf("%zu,%zu,%zu,%lld,%.3f,%lld,%lld,%d\n",
                    p.params.pes_fwd, p.params.pes_bwd,
                    p.params.block_size, static_cast<long long>(p.cycles),
                    p.latency_us, static_cast<long long>(p.resources.luts),
                    static_cast<long long>(p.resources.dsps),
                    p.resources.fits(*opt.platform) ? 1 : 0);
    }
    return 0;
}

int
cmd_rtl(const topology::RobotModel &model, const CliOptions &opt)
{
    if (opt.out_dir.empty()) {
        std::fprintf(stderr, "rtl requires an output directory\n");
        return 2;
    }
    std::error_code ec;
    std::filesystem::create_directories(opt.out_dir, ec);
    if (ec) {
        std::fprintf(stderr, "cannot create %s: %s\n", opt.out_dir.c_str(),
                     ec.message().c_str());
        return 1;
    }
    const core::Generator generator;
    const auto out = generator.from_model(model, opt.constraints);
    const std::string base =
        opt.out_dir + "/" + codegen::module_name(out.design);
    std::ofstream(base + ".v") << codegen::emit_verilog(out.design);
    std::ofstream(base + "_tb.v") << codegen::emit_testbench(out.design);
    std::ofstream(opt.out_dir + "/roboshape_cells.v")
        << codegen::emit_cell_library();
    std::printf("%s\n%s.v\n%s_tb.v\n%s/roboshape_cells.v\n",
                out.report.c_str(), base.c_str(), base.c_str(),
                opt.out_dir.c_str());
    return 0;
}

/** Case-insensitive lookup over the bundled library ("iiwa", "HyQ", ...). */
std::optional<topology::RobotId>
resolve_robot(const std::string &name)
{
    const auto lower = [](std::string s) {
        std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
            return static_cast<char>(std::tolower(c));
        });
        return s;
    };
    const std::string want = lower(name);
    for (const auto &ids :
         {topology::all_robots(), topology::extended_robots()})
        for (topology::RobotId id : ids)
            if (lower(topology::robot_name(id)) == want)
                return id;
    return std::nullopt;
}

/** Design knobs for trace/stats: explicit caps, else best/maximal. */
accel::AcceleratorParams
resolve_params(core::SweepContext &ctx, const CliOptions &opt)
{
    const std::size_t n = ctx.num_links();
    const auto clamp_knob = [n](std::size_t v) {
        return std::clamp<std::size_t>(v, 1, n);
    };
    accel::AcceleratorParams p;
    p.pes_fwd = clamp_knob(opt.constraints.max_pes_fwd.value_or(n));
    p.pes_bwd = clamp_knob(opt.constraints.max_pes_bwd.value_or(n));
    if (ctx.kernel() == sched::KernelKind::kDynamicsGradient)
        p.block_size = opt.constraints.max_block_size
                           ? clamp_knob(*opt.constraints.max_block_size)
                           : ctx.best_block_size();
    else
        p.block_size = 1;
    return p;
}

int
cmd_trace(const topology::RobotModel &model, const CliOptions &opt)
{
    core::SweepContext ctx(model, accel::default_timing(), opt.kernel);
    const accel::AcceleratorParams params = resolve_params(ctx, opt);
    const accel::AcceleratorDesign design = ctx.design(params);
    const sched::Schedule &schedule = design.pipelined();

    obs::ScheduleTraceOptions topt;
    topt.robot = model.name();
    topt.kernel = to_string(opt.kernel);
    topt.clock_period_ns = ctx.clock_period_ns();
    const std::string json =
        obs::schedule_trace_json(design.task_graph(), schedule, topt);

    std::string err;
    if (!obs::validate_json(json, &err)) {
        std::fprintf(stderr, "internal error: emitted trace is not valid "
                             "JSON: %s\n",
                     err.c_str());
        return 1;
    }

    if (opt.out_path.empty()) {
        std::fputs(json.c_str(), stdout);
        return 0;
    }
    std::ofstream f(opt.out_path, std::ios::binary);
    f << json;
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", opt.out_path.c_str());
        return 1;
    }

    // Per-PE accounting summary + the tiling invariant the golden tests
    // also assert: busy + stall + idle == makespan on every track.
    std::printf("trace: %s (%s, pes_fwd=%zu pes_bwd=%zu block=%zu) -> %s\n",
                model.name().c_str(), to_string(opt.kernel), params.pes_fwd,
                params.pes_bwd, params.block_size, opt.out_path.c_str());
    std::printf("makespan: %lld cycles\n",
                static_cast<long long>(schedule.makespan));
    bool exact = true;
    for (const obs::PeAccount &a :
         obs::account_schedule(design.task_graph(), schedule)) {
        std::printf("  %s%d: busy=%lld stall=%lld idle=%lld\n",
                    a.pe_class == sched::PeClass::kForward ? "fwd" : "bwd",
                    a.pe, static_cast<long long>(a.busy),
                    static_cast<long long>(a.stall),
                    static_cast<long long>(a.idle));
        exact = exact && a.total() == schedule.makespan;
    }
    if (!exact) {
        std::fprintf(stderr, "internal error: busy+stall+idle != makespan\n");
        return 1;
    }
    return 0;
}

int
cmd_stats(const topology::RobotModel &model, const CliOptions &opt)
{
    // A representative workload: precompute the sweep caches, compose
    // every knob triple from them, build the chosen design, and stream a
    // small batch through the compiled engine — touching every
    // instrumented subsystem so the snapshot below is meaningful.
    core::SweepContext ctx(model, accel::default_timing(), opt.kernel);
    ctx.precompute_stage_schedules();
    const std::size_t n = ctx.num_links();
    for (std::size_t f = 1; f <= n; ++f)
        for (std::size_t b = 1; b <= n; ++b)
            for (std::size_t bs = 1; bs <= ctx.block_knob_max(); ++bs)
                ctx.cycles_no_pipelining({f, b, bs});
    const accel::AcceleratorParams params = resolve_params(ctx, opt);
    const accel::AcceleratorDesign design = ctx.design(params);

    const accel::SimEngine engine(design);
    auto ws = engine.make_workspace();
    accel::EngineResult result;
    constexpr std::size_t kPackets = 8;
    const topology::TopologyInfo &topo = ctx.topology();
    std::vector<linalg::Vector> q, qd, qdd;
    std::vector<linalg::Matrix> minv;
    for (std::size_t p = 0; p < kPackets; ++p) {
        const auto state =
            dynamics::random_state(model, 1234 + static_cast<int>(p));
        q.push_back(state.q);
        qd.push_back(state.qd);
        if (opt.kernel == sched::KernelKind::kDynamicsGradient) {
            const auto ref = dynamics::forward_dynamics_gradients(
                model, topo, state.q, state.qd, state.tau);
            qdd.push_back(ref.qdd);
            minv.push_back(ref.mass_inv);
        }
    }
    for (std::size_t p = 0; p < kPackets; ++p) {
        accel::InputPacket packet;
        packet.q = &q[p];
        packet.qd = &qd[p];
        if (opt.kernel == sched::KernelKind::kDynamicsGradient) {
            packet.qdd = &qdd[p];
            packet.minv = &minv[p];
        }
        engine.run(ws, packet, result);
    }

    const core::SweepMemoStats memo = ctx.memo_stats();
    if (opt.format == "prometheus") {
        // Machine-readable mode: the exact encoder roboshaped serves on
        // GET /metrics, so scrape pipelines and offline runs agree.
        std::fputs(obs::prometheus_exposition().c_str(), stdout);
    } else {
        std::printf("stats: %s (%s, pes_fwd=%zu pes_bwd=%zu block=%zu)\n",
                    model.name().c_str(), to_string(opt.kernel),
                    params.pes_fwd, params.pes_bwd, params.block_size);
        std::printf("sweep memoization: %llu hits / %llu misses\n",
                    static_cast<unsigned long long>(memo.hits()),
                    static_cast<unsigned long long>(memo.misses()));
        std::printf("counters:\n");
        for (const obs::CounterSample &c : obs::registry().counters())
            std::printf("  %-32s %llu\n", c.name.c_str(),
                        static_cast<unsigned long long>(c.value));
        std::printf("histograms:\n");
        for (const obs::HistogramSample &h : obs::registry().histograms())
            std::printf("  %-32s count=%llu mean=%.1f min=%lld max=%lld "
                        "p50=%lld p99=%lld\n",
                        h.name.c_str(),
                        static_cast<unsigned long long>(h.stats.count),
                        h.stats.mean(), static_cast<long long>(h.stats.min),
                        static_cast<long long>(h.stats.max),
                        static_cast<long long>(h.stats.p50()),
                        static_cast<long long>(h.stats.p99()));
    }

    if (!opt.out_path.empty()) {
        obs::RunReport report("roboshape_cli", "stats");
        report.set_robot(model.name());
        report.set_kernel(to_string(opt.kernel));
        report.set_params(params.pes_fwd, params.pes_bwd,
                          params.block_size);
        report.metric("pipelined_makespan_cycles",
                      static_cast<std::int64_t>(design.pipelined().makespan));
        report.metric("staged_cycles", static_cast<std::int64_t>(
                                           ctx.cycles_no_pipelining(params)));
        report.metric("engine_trace_ops", engine.trace_length());
        report.metric("memo_hits", memo.hits());
        report.metric("memo_misses", memo.misses());
        report.capture_counters();
        if (!report.write(opt.out_path)) {
            std::fprintf(stderr, "cannot write %s\n", opt.out_path.c_str());
            return 1;
        }
        // Keep stdout pure exposition text in prometheus mode.
        if (opt.format == "prometheus")
            std::fprintf(stderr, "report: %s\n", opt.out_path.c_str());
        else
            std::printf("report: %s\n", opt.out_path.c_str());
    }
    return 0;
}

volatile std::sig_atomic_t g_shutdown = 0;
volatile std::sig_atomic_t g_dump = 0;

void
on_shutdown_signal(int)
{
    g_shutdown = 1;
}

void
on_dump_signal(int)
{
    g_dump = 1;
}

int
cmd_serve(const CliOptions &opt)
{
    service::Service service;
    service::ServerOptions sopt;
    sopt.port = static_cast<std::uint16_t>(opt.port);
    sopt.workers = opt.threads;
    sopt.queue_capacity = opt.queue;
    sopt.access_log_path = opt.access_log_path;
    sopt.slow_ms = opt.slow_ms;
    service::Server server(service, sopt);
    if (!server.start()) {
        std::fprintf(stderr, "error: cannot start roboshaped: %s\n",
                     server.error().c_str());
        return 1;
    }
    std::printf("roboshaped listening on 127.0.0.1:%u "
                "(%zu workers, queue %zu)\n",
                static_cast<unsigned>(server.port()), opt.threads,
                opt.queue);
    std::fflush(stdout);

    std::signal(SIGINT, on_shutdown_signal);
    std::signal(SIGTERM, on_shutdown_signal);
    std::signal(SIGUSR1, on_dump_signal);
    // Socket writes already pass MSG_NOSIGNAL, but stdout/stderr may be
    // pipes owned by a supervisor that hangs up first; a dead log pipe
    // must not kill the daemon mid-drain.
    std::signal(SIGPIPE, SIG_IGN);
    while (!g_shutdown) {
        if (g_dump) {
            // SIGUSR1: post-mortem-without-the-mortem.  The handler only
            // sets a flag; the ring is snapshotted and serialized here,
            // on the main thread, where heap use is safe.
            g_dump = 0;
            const std::string dump = service::flight_recorder().dump_json();
            std::fputs("roboshaped: flight recorder dump follows\n",
                       stderr);
            std::fputs(dump.c_str(), stderr);
            std::fputc('\n', stderr);
            std::fflush(stderr);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }

    // Graceful drain: in-flight requests finish before stop() returns.
    server.stop();
    std::printf("roboshaped: drained and stopped\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opt = parse_args(argc, argv);
    if (!opt)
        return usage();

    if (opt->command == "serve")
        return cmd_serve(*opt);

    topology::RobotModel model;
    if (!opt->robot.empty()) {
        const auto id = resolve_robot(opt->robot);
        if (!id) {
            std::fprintf(stderr, "error: unknown library robot '%s'\n",
                         opt->robot.c_str());
            return 1;
        }
        model = topology::build_robot(*id);
    } else if (!opt->urdf_path.empty()) {
        try {
            model = topology::parse_urdf_file(opt->urdf_path);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return 1;
        }
    } else {
        std::fprintf(stderr,
                     "error: command '%s' requires a <robot.urdf> path or "
                     "--robot NAME\n",
                     opt->command.c_str());
        return usage();
    }

    try {
        if (opt->command == "info")
            return cmd_info(model);
        if (opt->command == "gen")
            return cmd_gen(model, *opt);
        if (opt->command == "sweep")
            return cmd_sweep(model, *opt);
        if (opt->command == "rtl")
            return cmd_rtl(model, *opt);
        if (opt->command == "trace")
            return cmd_trace(model, *opt);
        if (opt->command == "stats")
            return cmd_stats(model, *opt);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    // Unreachable: parse_args validated the command.
    std::fprintf(stderr, "error: unknown command '%s'\n",
                 opt->command.c_str());
    return usage();
}
