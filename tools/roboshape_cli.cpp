/**
 * @file
 * The `roboshape` command-line tool: the front door of the generator flow.
 *
 *   roboshape info  <robot.urdf>                 topology + Table-3 metrics
 *   roboshape gen   <robot.urdf> [options]       generate + report
 *   roboshape sweep <robot.urdf> [options]       design space + Pareto CSV
 *   roboshape rtl   <robot.urdf> <out_dir> [...] emit Verilog bundle
 *
 * Options:
 *   --platform vcu118|vc707      resource envelope (default vcu118)
 *   --pes-fwd N / --pes-bwd N / --block N   explicit knob caps
 *   --kernel gradient|crba|kinematics       kernel family (default gradient)
 *   --timeline                   print the ASCII schedule timeline (gen)
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "codegen/verilog_emitter.h"
#include "core/design_space.h"
#include "core/design_export.h"
#include "core/generator.h"
#include "io/payload.h"
#include "sched/timeline.h"
#include "topology/topology_info.h"
#include "topology/urdf_parser.h"

namespace {

using namespace roboshape;

struct CliOptions
{
    std::string command;
    std::string urdf_path;
    std::string out_dir;
    const accel::FpgaPlatform *platform = &accel::vcu118();
    core::GeneratorConstraints constraints;
    sched::KernelKind kernel = sched::KernelKind::kDynamicsGradient;
    bool timeline = false;
    bool json = false;
};

int
usage()
{
    std::fprintf(stderr,
                 "usage: roboshape <info|gen|sweep|rtl> <robot.urdf> "
                 "[out_dir] [--platform vcu118|vc707]\n"
                 "                 [--pes-fwd N] [--pes-bwd N] [--block N] "
                 "[--kernel gradient|crba|kinematics]\n"
                 "                 [--timeline] [--json]\n");
    return 2;
}

std::optional<CliOptions>
parse_args(int argc, char **argv)
{
    if (argc < 3)
        return std::nullopt;
    CliOptions opt;
    opt.command = argv[1];
    opt.urdf_path = argv[2];
    int positional = 0;
    for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--platform") {
            const char *v = next();
            if (!v)
                return std::nullopt;
            if (std::strcmp(v, "vcu118") == 0)
                opt.platform = &accel::vcu118();
            else if (std::strcmp(v, "vc707") == 0)
                opt.platform = &accel::vc707();
            else
                return std::nullopt;
        } else if (arg == "--pes-fwd") {
            const char *v = next();
            if (!v)
                return std::nullopt;
            opt.constraints.max_pes_fwd = std::stoul(v);
        } else if (arg == "--pes-bwd") {
            const char *v = next();
            if (!v)
                return std::nullopt;
            opt.constraints.max_pes_bwd = std::stoul(v);
        } else if (arg == "--block") {
            const char *v = next();
            if (!v)
                return std::nullopt;
            opt.constraints.max_block_size = std::stoul(v);
        } else if (arg == "--kernel") {
            const char *v = next();
            if (!v)
                return std::nullopt;
            if (std::strcmp(v, "gradient") == 0)
                opt.kernel = sched::KernelKind::kDynamicsGradient;
            else if (std::strcmp(v, "crba") == 0)
                opt.kernel = sched::KernelKind::kMassMatrix;
            else if (std::strcmp(v, "kinematics") == 0)
                opt.kernel = sched::KernelKind::kForwardKinematics;
            else
                return std::nullopt;
        } else if (arg == "--timeline") {
            opt.timeline = true;
        } else if (arg == "--json") {
            opt.json = true;
        } else if (positional == 0) {
            opt.out_dir = arg;
            ++positional;
        } else {
            return std::nullopt;
        }
    }
    opt.constraints.platform = opt.platform;
    return opt;
}

int
cmd_info(const topology::RobotModel &model)
{
    const topology::TopologyInfo topo(model);
    const topology::TopologyMetrics m = topo.metrics();
    std::printf("robot: %s\n", model.name().c_str());
    std::printf("  total links       %zu\n", m.total_links);
    std::printf("  max leaf depth    %zu\n", m.max_leaf_depth);
    std::printf("  avg leaf depth    %.2f\n", m.avg_leaf_depth);
    std::printf("  max descendants   %zu\n", m.max_descendants);
    std::printf("  leaf depth stdev  %.2f\n", m.leaf_depth_stdev);
    std::printf("  independent limbs %zu\n", model.base_children().size());
    std::printf("  branch links      %zu\n", topo.branch_links().size());
    std::printf("  mass matrix       %.0f%% sparse, %.2fx sparse-I/O "
                "compression\n",
                topo.mass_matrix_sparsity() * 100.0,
                io::compression_ratio(topo));
    std::printf("  links:\n");
    for (std::size_t i = 0; i < model.num_links(); ++i) {
        const auto &l = model.link(i);
        std::printf("    [%2zu] %-24s parent=%2d joint=%s depth=%zu\n", i,
                    l.name.c_str(), l.parent,
                    spatial::to_string(l.joint.type()), topo.depth(i));
    }
    return 0;
}

int
cmd_gen(const topology::RobotModel &model, const CliOptions &opt)
{
    const core::Generator generator;
    const auto out = generator.from_model(model, opt.constraints);
    if (opt.json) {
        std::fputs(core::design_to_json(out.design).c_str(), stdout);
        return 0;
    }
    std::fputs(out.report.c_str(), stdout);
    if (opt.timeline) {
        std::printf("\nforward-stage timeline:\n%s",
                    sched::render_timeline(out.design.task_graph(),
                                           out.design.forward_stage())
                        .c_str());
        std::printf("\nbackward-stage timeline:\n%s",
                    sched::render_timeline(out.design.task_graph(),
                                           out.design.backward_stage())
                        .c_str());
    }
    return 0;
}

int
cmd_sweep(const topology::RobotModel &model, const CliOptions &opt)
{
    const core::DesignSpace space =
        core::DesignSpace::sweep(model, accel::default_timing(), opt.kernel);
    std::printf("# %zu design points for %s (%s)\n", space.points().size(),
                model.name().c_str(), to_string(opt.kernel));
    std::printf("pes_fwd,pes_bwd,block,cycles,latency_us,luts,dsps,"
                "fits_%s\n",
                opt.platform == &accel::vc707() ? "vc707" : "vcu118");
    for (const core::DesignPoint &p : space.pareto_frontier()) {
        std::printf("%zu,%zu,%zu,%lld,%.3f,%lld,%lld,%d\n",
                    p.params.pes_fwd, p.params.pes_bwd,
                    p.params.block_size, static_cast<long long>(p.cycles),
                    p.latency_us, static_cast<long long>(p.resources.luts),
                    static_cast<long long>(p.resources.dsps),
                    p.resources.fits(*opt.platform) ? 1 : 0);
    }
    return 0;
}

int
cmd_rtl(const topology::RobotModel &model, const CliOptions &opt)
{
    if (opt.out_dir.empty()) {
        std::fprintf(stderr, "rtl requires an output directory\n");
        return 2;
    }
    std::error_code ec;
    std::filesystem::create_directories(opt.out_dir, ec);
    if (ec) {
        std::fprintf(stderr, "cannot create %s: %s\n", opt.out_dir.c_str(),
                     ec.message().c_str());
        return 1;
    }
    const core::Generator generator;
    const auto out = generator.from_model(model, opt.constraints);
    const std::string base =
        opt.out_dir + "/" + codegen::module_name(out.design);
    std::ofstream(base + ".v") << codegen::emit_verilog(out.design);
    std::ofstream(base + "_tb.v") << codegen::emit_testbench(out.design);
    std::ofstream(opt.out_dir + "/roboshape_cells.v")
        << codegen::emit_cell_library();
    std::printf("%s\n%s.v\n%s_tb.v\n%s/roboshape_cells.v\n",
                out.report.c_str(), base.c_str(), base.c_str(),
                opt.out_dir.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opt = parse_args(argc, argv);
    if (!opt)
        return usage();

    topology::RobotModel model;
    try {
        model = topology::parse_urdf_file(opt->urdf_path);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }

    try {
        if (opt->command == "info")
            return cmd_info(model);
        if (opt->command == "gen")
            return cmd_gen(model, *opt);
        if (opt->command == "sweep")
            return cmd_sweep(model, *opt);
        if (opt->command == "rtl")
            return cmd_rtl(model, *opt);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return usage();
}
