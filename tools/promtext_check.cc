/**
 * @file
 * Prometheus text-exposition checker over stdin (exit 0 = well-formed).
 *
 * The CI daemon-smoke job pipes `GET /metrics` through this so "the
 * endpoint answered" also means "the endpoint answered something a
 * scraper can ingest".  Checked invariants (exposition format 0.0.4):
 *
 *   - every non-comment line is `name({labels})? value`
 *   - metric names match [a-zA-Z_:][a-zA-Z0-9_:]*
 *   - every sample's family is declared by a preceding `# TYPE` line
 *   - values parse as finite decimal numbers (or +Inf/-Inf/NaN)
 *   - no duplicate name+labels sample
 *
 *   curl -s localhost:8080/metrics | promtext_check
 */

#include <cctype>
#include <cstdio>
#include <iostream>
#include <set>
#include <sstream>
#include <string>

namespace {

bool
is_name_start(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':';
}

bool
is_name_byte(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':';
}

/** Parses a metric name at s[pos...]; returns its length (0 = invalid). */
std::size_t
scan_name(const std::string &s, std::size_t pos)
{
    if (pos >= s.size() || !is_name_start(s[pos]))
        return 0;
    std::size_t end = pos + 1;
    while (end < s.size() && is_name_byte(s[end]))
        ++end;
    return end - pos;
}

/** True iff @p token is a valid exposition value (decimal, Inf, NaN). */
bool
is_value(const std::string &token)
{
    if (token.empty())
        return false;
    if (token == "+Inf" || token == "-Inf" || token == "NaN")
        return true;
    std::size_t i = 0;
    if (token[i] == '+' || token[i] == '-')
        ++i;
    bool digits = false;
    while (i < token.size() &&
           std::isdigit(static_cast<unsigned char>(token[i]))) {
        ++i;
        digits = true;
    }
    if (i < token.size() && token[i] == '.') {
        ++i;
        while (i < token.size() &&
               std::isdigit(static_cast<unsigned char>(token[i]))) {
            ++i;
            digits = true;
        }
    }
    if (!digits)
        return false;
    if (i < token.size() && (token[i] == 'e' || token[i] == 'E')) {
        ++i;
        if (i < token.size() && (token[i] == '+' || token[i] == '-'))
            ++i;
        bool exp_digits = false;
        while (i < token.size() &&
               std::isdigit(static_cast<unsigned char>(token[i]))) {
            ++i;
            exp_digits = true;
        }
        if (!exp_digits)
            return false;
    }
    return i == token.size();
}

int
fail(std::size_t line_no, const std::string &line, const char *why)
{
    std::fprintf(stderr, "promtext_check: line %zu: %s: %s\n", line_no, why,
                 line.c_str());
    return 1;
}

} // namespace

int
main()
{
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    const std::string text = buffer.str();
    if (text.empty()) {
        std::fprintf(stderr, "promtext_check: empty input\n");
        return 1;
    }

    std::set<std::string> typed_families;
    std::set<std::string> seen_samples;
    std::size_t samples = 0;
    std::size_t line_no = 0;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        if (line[0] == '#') {
            // Only TYPE comments matter for the family check; HELP and
            // free comments pass through.
            if (line.rfind("# TYPE ", 0) == 0) {
                const std::size_t len = scan_name(line, 7);
                if (len == 0)
                    return fail(line_no, line, "malformed TYPE comment");
                typed_families.insert(line.substr(7, len));
            }
            continue;
        }

        const std::size_t name_len = scan_name(line, 0);
        if (name_len == 0)
            return fail(line_no, line, "invalid metric name");
        const std::string name = line.substr(0, name_len);
        std::size_t pos = name_len;

        std::string labels;
        if (pos < line.size() && line[pos] == '{') {
            const std::size_t close = line.find('}', pos);
            if (close == std::string::npos)
                return fail(line_no, line, "unterminated label set");
            labels = line.substr(pos, close - pos + 1);
            pos = close + 1;
        }

        if (pos >= line.size() || line[pos] != ' ')
            return fail(line_no, line, "expected ' ' before value");
        const std::string value = line.substr(pos + 1);
        if (!is_value(value))
            return fail(line_no, line, "invalid sample value");

        // A summary's quantile/sum/count samples belong to the family
        // that declared them; strip the conventional suffixes first.
        std::string family = name;
        for (const char *suffix : {"_sum", "_count"}) {
            const std::string s(suffix);
            if (family.size() > s.size() &&
                family.compare(family.size() - s.size(), s.size(), s) ==
                    0 &&
                typed_families.count(
                    family.substr(0, family.size() - s.size()))) {
                family = family.substr(0, family.size() - s.size());
                break;
            }
        }
        if (!typed_families.count(family))
            return fail(line_no, line, "sample without a # TYPE family");

        if (!seen_samples.insert(name + labels).second)
            return fail(line_no, line, "duplicate name+labels sample");
        ++samples;
    }

    if (samples == 0) {
        std::fprintf(stderr, "promtext_check: no samples in input\n");
        return 1;
    }
    return 0;
}
