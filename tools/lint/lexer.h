/**
 * @file
 * Minimal C++ lexer for roboshape_lint (docs/STATIC_ANALYSIS.md).
 *
 * The lint rules ban *code* constructs — a bare `strtod` call, a printf'd
 * `{` — so the scanner has to know the difference between an identifier in
 * code, the same word inside a comment, and the same word inside a string
 * literal.  A regex grep cannot: `// std::stoul is banned here` would
 * count as a violation and `R"({"k":1})"` would hide one.  This lexer
 * strips comments and both ordinary and raw string literals correctly,
 * tracks 1-based line/column for every token, and keeps the comment text
 * around so the rule passes can read `NOLINT(...)` suppressions and
 * `lint: warm-path` region annotations.
 *
 * It is deliberately not a full C++ lexer: preprocessor directives are
 * tokenized like ordinary code (good enough — the rules only look at
 * identifier/call shapes), digraphs and trigraphs are ignored, and
 * numeric literals are lumped into one token kind.
 */

#ifndef ROBOSHAPE_TOOLS_LINT_LEXER_H
#define ROBOSHAPE_TOOLS_LINT_LEXER_H

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace roboshape {
namespace lint {

enum class TokKind
{
    kIdentifier, ///< [A-Za-z_][A-Za-z0-9_]*  (keywords included).
    kNumber,     ///< Integer/float literal (one blob, suffixes included).
    kString,     ///< String literal; text() is the *decoded* content.
    kChar,       ///< Character literal; text is the raw inner content.
    kPunct,      ///< One operator/punctuator (longest-match, e.g. "<<").
};

/** One lexed token with its 1-based source position. */
struct Token
{
    TokKind kind = TokKind::kPunct;
    std::string text;        ///< Identifier spelling / decoded string body.
    std::size_t offset = 0;  ///< Byte offset of the token start.
    std::size_t line = 0;    ///< 1-based line of the token start.
    std::size_t column = 0;  ///< 1-based column of the token start.
};

/** One comment (// or block) with position; text excludes the delimiters. */
struct Comment
{
    std::string text;
    std::size_t offset = 0;
    std::size_t line = 0;     ///< 1-based line the comment starts on.
    std::size_t column = 0;
    std::size_t end_line = 0; ///< Last line the comment touches.
};

struct LexResult
{
    std::vector<Token> tokens;
    std::vector<Comment> comments;
};

/**
 * Lexes @p src.  Never throws: malformed input (unterminated string or
 * comment) is tolerated by consuming to end of line/file, because lint
 * must degrade gracefully on the adversarial fixtures it scans.
 */
LexResult lex(std::string_view src);

} // namespace lint
} // namespace roboshape

#endif // ROBOSHAPE_TOOLS_LINT_LEXER_H
