/**
 * @file
 * Implementation of the lint lexer.  See lexer.h for scope.
 */

#include "lint/lexer.h"

namespace roboshape {
namespace lint {

namespace {

bool
is_ident_start(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

bool
is_ident_char(char c)
{
    return is_ident_start(c) || (c >= '0' && c <= '9');
}

bool
is_digit(char c)
{
    return c >= '0' && c <= '9';
}

/** Cursor over the source that maintains 1-based line/column. */
class Scanner
{
  public:
    explicit Scanner(std::string_view src) : src_(src) {}

    bool done() const { return pos_ >= src_.size(); }
    char peek(std::size_t ahead = 0) const
    {
        return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
    }

    char advance()
    {
        const char c = src_[pos_++];
        if (c == '\n') {
            ++line_;
            column_ = 1;
        } else {
            ++column_;
        }
        return c;
    }

    std::size_t pos() const { return pos_; }
    std::size_t line() const { return line_; }
    std::size_t column() const { return column_; }

  private:
    std::string_view src_;
    std::size_t pos_ = 0;
    std::size_t line_ = 1;
    std::size_t column_ = 1;
};

/** Decodes one escape sequence after the backslash has been consumed. */
char
decode_escape(char c)
{
    switch (c) {
    case 'n':
        return '\n';
    case 't':
        return '\t';
    case 'r':
        return '\r';
    case '0':
        return '\0';
    case 'a':
        return '\a';
    case 'b':
        return '\b';
    case 'f':
        return '\f';
    case 'v':
        return '\v';
    default:
        // \" \\ \' and anything exotic (\x..., \u...) keep the next
        // char verbatim; the rules only care about quotes and braces.
        return c;
    }
}

} // namespace

LexResult
lex(std::string_view src)
{
    LexResult out;
    Scanner s(src);

    auto start_token = [&s](TokKind kind) {
        Token t;
        t.kind = kind;
        t.offset = s.pos();
        t.line = s.line();
        t.column = s.column();
        return t;
    };

    while (!s.done()) {
        const char c = s.peek();

        // Whitespace.
        if (c == ' ' || c == '\t' || c == '\r' || c == '\n' ||
            c == '\f' || c == '\v') {
            s.advance();
            continue;
        }

        // Line comment.
        if (c == '/' && s.peek(1) == '/') {
            Comment cm;
            cm.offset = s.pos();
            cm.line = s.line();
            cm.column = s.column();
            s.advance();
            s.advance();
            while (!s.done() && s.peek() != '\n')
                cm.text.push_back(s.advance());
            cm.end_line = cm.line;
            out.comments.push_back(std::move(cm));
            continue;
        }

        // Block comment.
        if (c == '/' && s.peek(1) == '*') {
            Comment cm;
            cm.offset = s.pos();
            cm.line = s.line();
            cm.column = s.column();
            s.advance();
            s.advance();
            while (!s.done() &&
                   !(s.peek() == '*' && s.peek(1) == '/'))
                cm.text.push_back(s.advance());
            if (!s.done()) {
                s.advance(); // '*'
                s.advance(); // '/'
            }
            cm.end_line = s.line();
            out.comments.push_back(std::move(cm));
            continue;
        }

        // Identifier — possibly a string-literal prefix (R"..", u8"..").
        if (is_ident_start(c)) {
            Token t = start_token(TokKind::kIdentifier);
            while (!s.done() && is_ident_char(s.peek()))
                t.text.push_back(s.advance());

            const bool string_prefix =
                (t.text == "R" || t.text == "u8" || t.text == "u" ||
                 t.text == "U" || t.text == "L" || t.text == "u8R" ||
                 t.text == "uR" || t.text == "UR" || t.text == "LR");
            if (string_prefix && s.peek() == '"') {
                const bool raw = t.text.back() == 'R';
                t.kind = TokKind::kString;
                t.text.clear();
                s.advance(); // opening quote
                if (raw) {
                    // R"delim( ... )delim"
                    std::string delim;
                    while (!s.done() && s.peek() != '(')
                        delim.push_back(s.advance());
                    if (!s.done())
                        s.advance(); // '('
                    const std::string closer = ")" + delim + "\"";
                    std::string body;
                    while (!s.done()) {
                        body.push_back(s.advance());
                        if (body.size() >= closer.size() &&
                            body.compare(body.size() - closer.size(),
                                         closer.size(), closer) == 0) {
                            body.resize(body.size() - closer.size());
                            break;
                        }
                    }
                    t.text = std::move(body);
                } else {
                    while (!s.done() && s.peek() != '"' &&
                           s.peek() != '\n') {
                        char b = s.advance();
                        if (b == '\\' && !s.done())
                            b = decode_escape(s.advance());
                        t.text.push_back(b);
                    }
                    if (!s.done() && s.peek() == '"')
                        s.advance();
                }
                out.tokens.push_back(std::move(t));
                continue;
            }
            if (string_prefix && s.peek() == '\'' && t.text != "R") {
                t.kind = TokKind::kChar;
                t.text.clear();
                s.advance();
                while (!s.done() && s.peek() != '\'' &&
                       s.peek() != '\n') {
                    char b = s.advance();
                    if (b == '\\' && !s.done())
                        b = s.advance();
                    t.text.push_back(b);
                }
                if (!s.done() && s.peek() == '\'')
                    s.advance();
                out.tokens.push_back(std::move(t));
                continue;
            }
            out.tokens.push_back(std::move(t));
            continue;
        }

        // Plain string literal.
        if (c == '"') {
            Token t = start_token(TokKind::kString);
            s.advance();
            while (!s.done() && s.peek() != '"' && s.peek() != '\n') {
                char b = s.advance();
                if (b == '\\' && !s.done())
                    b = decode_escape(s.advance());
                t.text.push_back(b);
            }
            if (!s.done() && s.peek() == '"')
                s.advance();
            out.tokens.push_back(std::move(t));
            continue;
        }

        // Character literal.  Heuristic: a ' directly after an identifier
        // or number is a C++14 digit separator context, not a char literal
        // — but digit separators are consumed inside the number path, so
        // any ' seen here starts a real char literal.
        if (c == '\'') {
            Token t = start_token(TokKind::kChar);
            s.advance();
            while (!s.done() && s.peek() != '\'' && s.peek() != '\n') {
                char b = s.advance();
                if (b == '\\' && !s.done())
                    b = s.advance();
                t.text.push_back(b);
            }
            if (!s.done() && s.peek() == '\'')
                s.advance();
            out.tokens.push_back(std::move(t));
            continue;
        }

        // Number (integers, floats, hex, digit separators, suffixes; a
        // leading '.' as in .5 is handled by the punct path falling
        // through only when no digit follows).
        if (is_digit(c) || (c == '.' && is_digit(s.peek(1)))) {
            Token t = start_token(TokKind::kNumber);
            while (!s.done()) {
                const char n = s.peek();
                if (is_ident_char(n) || n == '.' || n == '\'') {
                    t.text.push_back(s.advance());
                    continue;
                }
                // Exponent sign: 1e-5, 0x1p+3.
                if ((n == '+' || n == '-') && !t.text.empty()) {
                    const char prev = t.text.back();
                    if (prev == 'e' || prev == 'E' || prev == 'p' ||
                        prev == 'P') {
                        t.text.push_back(s.advance());
                        continue;
                    }
                }
                break;
            }
            out.tokens.push_back(std::move(t));
            continue;
        }

        // Punctuation: longest-match for the few multi-char operators the
        // rules care about ("<<", "::"); everything else single char.
        Token t = start_token(TokKind::kPunct);
        const char first = s.advance();
        t.text.push_back(first);
        if (!s.done()) {
            const char second = s.peek();
            if ((first == '<' && second == '<') ||
                (first == '>' && second == '>') ||
                (first == ':' && second == ':') ||
                (first == '-' && second == '>') ||
                (first == '=' && second == '=') ||
                (first == '&' && second == '&') ||
                (first == '|' && second == '|'))
                t.text.push_back(s.advance());
        }
        out.tokens.push_back(std::move(t));
    }

    return out;
}

} // namespace lint
} // namespace roboshape
