/**
 * @file
 * roboshape_lint: repo-native static analysis (docs/STATIC_ANALYSIS.md).
 *
 * PRs 1-8 established invariants that generic tooling cannot check —
 * strict whole-string numeric parsing through core::parse_uint, JSON
 * emission only through obs::JsonWriter, allocation-free warm paths in
 * the engine/executor, bit-identical determinism in parallel regions,
 * counter names kept in sync with docs/OBSERVABILITY.md, and environment
 * access only through the validated helpers.  This library enforces each
 * of them as a named, individually-suppressable rule over the token
 * stream produced by lint/lexer.h, with file:line:col diagnostics and
 * caret snippets reusing the ingestion Diagnostic machinery
 * (topology/diagnostics.h).
 *
 * Rules (see rule_catalog() and docs/STATIC_ANALYSIS.md for details):
 *
 *   banned-raw-parse    bare stoul/strtod/atoi/sscanf-family calls
 *   no-alloc-warm-path  allocation calls inside warm-path regions
 *   json-writer-only    printf/ostream emission of JSON-shaped literals
 *   no-nondeterminism   rand/clock/time in deterministic library code
 *   counter-name-sync   obs counter literals <-> OBSERVABILITY.md catalog
 *   banned-env-raw      getenv outside the validated env helpers
 *
 * Suppression: append `// NOLINT(rule-name)` to the offending line or
 * put `// NOLINTNEXTLINE(rule-name)` on the line above (clang-tidy
 * style; several rules may be comma-separated).  Suppressions that name
 * a roboshape_lint rule but never fire are themselves reported as
 * `unused-suppression`, so stale annotations cannot accumulate.  NOLINT
 * markers naming only unknown (e.g. clang-tidy) rules are ignored.
 */

#ifndef ROBOSHAPE_TOOLS_LINT_LINT_H
#define ROBOSHAPE_TOOLS_LINT_LINT_H

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace roboshape {
namespace lint {

/** One rule violation (or meta-finding such as unused-suppression). */
struct Finding
{
    std::string rule;
    std::string file;        ///< Repo-relative path (forward slashes).
    std::size_t line = 0;    ///< 1-based; 0 = whole-file.
    std::size_t column = 0;  ///< 1-based; 0 = unknown.
    std::string message;
    std::string snippet;     ///< Source line + caret, may be empty.

    /** "file:line:col: error[rule] message" (+ snippet lines). */
    std::string to_string() const;
};

/** Name + one-line summary, for --list-rules and the docs. */
struct RuleInfo
{
    std::string_view name;
    std::string_view summary;
};

/** Every rule the engine knows, in canonical order. */
const std::vector<RuleInfo> &rule_catalog();

/** True when @p name names a rule in rule_catalog(). */
bool is_known_rule(std::string_view name);

struct LintConfig
{
    /** Rules to run; empty = all.  Unknown names are a caller error. */
    std::set<std::string> rules;

    /**
     * Report catalog entries in the counter doc that no scanned file
     * mentions.  Only meaningful when the whole tree is scanned; the CLI
     * turns it off when given an explicit file list.
     */
    bool doc_to_code = true;
};

/**
 * Accumulating lint session: feed every file, then finish().
 *
 *     Linter l;
 *     l.set_counter_doc("docs/OBSERVABILITY.md", doc_text);
 *     l.add_file("src/foo.cc", source_text);
 *     std::vector<Finding> findings = l.finish();
 */
class Linter
{
  public:
    explicit Linter(LintConfig config = {});
    ~Linter(); ///< Out of line: members hold nested types defined in lint.cc.

    /**
     * Registers the observability doc whose counter catalog (the lines
     * between the `lint:counter-catalog` begin/end markers) anchors the
     * counter-name-sync rule.  Optional; without it the rule only checks
     * that no file declares counters (vacuously true on fixtures).
     */
    void set_counter_doc(std::string rel_path, std::string_view content);

    /** Lexes and lints one file; findings accumulate until finish(). */
    void add_file(const std::string &rel_path, const std::string &content);

    /**
     * Completes cross-file rules (counter-name-sync, unused-suppression)
     * and returns all findings sorted by (file, line, column, rule).
     */
    std::vector<Finding> finish();

  private:
    struct Suppression;
    struct CounterUse;

    void run_token_rules(const std::string &path, const std::string &content);
    bool report(Finding f); ///< Applies suppressions; true if kept.
    bool rule_enabled(std::string_view rule) const;

    LintConfig config_;
    std::string doc_path_;
    std::map<std::string, std::size_t> doc_catalog_; ///< name -> doc line.
    std::vector<Finding> findings_;
    std::vector<Suppression> suppressions_; ///< Current file only.
    std::vector<CounterUse> counter_uses_;
    bool finished_ = false;
};

/**
 * Renders findings as one deterministic JSON document (schema
 * roboshape.lint_report/1) through obs::JsonWriter.
 */
std::string findings_to_json(const std::vector<Finding> &findings);

/**
 * Collects the repo files lint scans: *.h *.hpp *.cc *.cpp *.inl under
 * src/ tools/ bench/ tests/ examples/ relative to @p root, excluding the
 * lint fixture corpus (tests/lint_corpus/).  Returned paths are
 * root-relative with forward slashes, sorted.
 */
std::vector<std::string> collect_repo_files(const std::string &root);

} // namespace lint
} // namespace roboshape

#endif // ROBOSHAPE_TOOLS_LINT_LINT_H
