/**
 * @file
 * Rule engine for roboshape_lint.  See lint.h and docs/STATIC_ANALYSIS.md.
 */

#include "lint/lint.h"

#include <algorithm>
#include <array>
#include <filesystem>

#include "lint/lexer.h"
#include "obs/json.h"
#include "topology/diagnostics.h"

namespace roboshape {
namespace lint {

namespace {

// ---------------------------------------------------------------------------
// Rule tables.  Function names are matched as identifier tokens followed by
// '(' so prose in comments and string literals never counts.

constexpr std::string_view kRuleRawParse = "banned-raw-parse";
constexpr std::string_view kRuleAllocWarm = "no-alloc-warm-path";
constexpr std::string_view kRuleJsonWriter = "json-writer-only";
constexpr std::string_view kRuleNondet = "no-nondeterminism";
constexpr std::string_view kRuleCounterSync = "counter-name-sync";
constexpr std::string_view kRuleEnvRaw = "banned-env-raw";
constexpr std::string_view kRuleUnusedSuppression = "unused-suppression";

/// Raw numeric parsers that silently accept "4abc" / "-1" / whitespace.
constexpr std::array<std::string_view, 23> kRawParseFns = {
    "stoi",     "stol",      "stoll",    "stoul",    "stoull", "stof",
    "stod",     "stold",     "strtol",   "strtoll",  "strtoul",
    "strtoull", "strtoimax", "strtoumax", "strtof",  "strtod", "strtold",
    "atoi",     "atol",      "atoll",    "atof",     "sscanf", "fscanf"};

/// Allocating calls banned inside `lint: warm-path` regions.  Note
/// `assign` is deliberately absent: assign/fill on a warm container is
/// the capacity-preserving idiom the engine uses on purpose.
constexpr std::array<std::string_view, 14> kAllocFns = {
    "malloc",       "calloc",      "realloc",  "aligned_alloc",
    "posix_memalign", "strdup",    "make_unique", "make_shared",
    "push_back",    "emplace_back", "emplace", "insert",
    "resize",       "reserve"};

/// printf-family sinks checked by json-writer-only.
constexpr std::array<std::string_view, 10> kPrintfFns = {
    "printf",  "fprintf",  "sprintf", "snprintf", "vprintf",
    "vfprintf", "vsprintf", "vsnprintf", "puts",  "fputs"};

/// Nondeterminism sources matched as calls (identifier + '(').
constexpr std::array<std::string_view, 11> kNondetCallFns = {
    "rand",  "srand",        "rand_r",       "drand48", "lrand48",
    "mrand48", "random",     "time",         "clock",   "gettimeofday",
    "clock_gettime"};

/// Nondeterminism sources matched as bare identifiers (types/members).
constexpr std::array<std::string_view, 4> kNondetTypes = {
    "random_device", "steady_clock", "system_clock",
    "high_resolution_clock"};

constexpr std::array<std::string_view, 2> kEnvFns = {"getenv",
                                                     "secure_getenv"};

constexpr std::string_view kWarmBegin = "lint: warm-path begin";
constexpr std::string_view kWarmEnd = "lint: warm-path end";

// ---------------------------------------------------------------------------
// Per-rule allowlists: the named invariant *implementations* are the only
// places allowed to use the raw construct.

bool
raw_parse_allowed(std::string_view path)
{
    // The strict parser itself, and the checked full-consumption
    // finite-only URDF number path built on strtod (docs/INGESTION.md).
    return path == "src/core/parse_uint.cc" ||
           path == "src/topology/urdf_parser.cc";
}

bool
json_writer_allowed(std::string_view path)
{
    return path == "src/obs/json.cc" || path == "src/obs/json.h";
}

bool
nondet_allowed(std::string_view path)
{
    // obs/ owns wall-clock tracing; bench/ measures wall time by design.
    return path.rfind("src/obs/", 0) == 0 || path.rfind("bench/", 0) == 0;
}

bool
env_raw_allowed(std::string_view path)
{
    // The validated ROBOSHAPE_THREADS and ROBOSHAPE_SIMD helpers.
    return path == "src/core/executor.cc" ||
           path == "src/accel/simd_lanes.cc";
}

template <typename Table>
bool
in_table(const Table &table, std::string_view name)
{
    return std::find(table.begin(), table.end(), name) != table.end();
}

std::string_view
trim(std::string_view s)
{
    while (!s.empty() &&
           (s.front() == ' ' || s.front() == '\t' || s.front() == '\n' ||
            s.front() == '\r'))
        s.remove_prefix(1);
    while (!s.empty() &&
           (s.back() == ' ' || s.back() == '\t' || s.back() == '\n' ||
            s.back() == '\r'))
        s.remove_suffix(1);
    return s;
}

/** True when a decoded string literal looks like a JSON fragment. */
bool
json_shaped(std::string_view decoded)
{
    const std::string_view t = trim(decoded);
    if (t == "{" || t == "[")
        return true;
    if (!t.empty() && (t.front() == '{' || t.front() == '[') &&
        t.find('"') != std::string_view::npos)
        return true;
    // A quote immediately followed by ':' is the JSON key signature
    // ("name": ...), regardless of what the literal starts with.
    return t.find("\":") != std::string_view::npos;
}

/**
 * Walks outward from token @p i to find the identifier of the innermost
 * printf-family call the token is an argument of, if any.  Stops at a
 * statement boundary at call depth zero.
 */
bool
inside_printf_call(const std::vector<Token> &tokens, std::size_t i)
{
    int depth = 0;
    for (std::size_t j = i; j-- > 0;) {
        const Token &t = tokens[j];
        if (t.kind != TokKind::kPunct) {
            if (depth == 0 && t.kind == TokKind::kIdentifier &&
                j + 1 < tokens.size() &&
                tokens[j + 1].kind == TokKind::kPunct &&
                tokens[j + 1].text == "(" && in_table(kPrintfFns, t.text))
                return true;
            continue;
        }
        if (t.text == ")") {
            ++depth;
        } else if (t.text == "(") {
            if (depth > 0)
                --depth;
            // depth == 0: stepped out of an enclosing call; keep
            // scanning — the printf identifier sits just before it.
        } else if (depth == 0 && (t.text == ";" || t.text == "{" ||
                                  t.text == "}")) {
            return false;
        }
    }
    return false;
}

std::string
make_snippet(const std::string &content, const Token &tok)
{
    topology::SourceLocation loc;
    loc.offset = tok.offset;
    loc.line = tok.line;
    loc.column = tok.column;
    return topology::source_snippet(content, loc);
}

} // namespace

// ---------------------------------------------------------------------------
// Public metadata.

const std::vector<RuleInfo> &
rule_catalog()
{
    static const std::vector<RuleInfo> catalog = {
        {kRuleRawParse,
         "bare stoul/strtod/atoi/sscanf-family parsing outside "
         "core::parse_uint and the checked URDF number path"},
        {kRuleAllocWarm,
         "allocation calls inside '// lint: warm-path begin/end' regions"},
        {kRuleJsonWriter,
         "printf/ostream emission of JSON-shaped literals outside "
         "obs::JsonWriter"},
        {kRuleNondet,
         "rand/clock/time sources outside src/obs/ and bench/ timing"},
        {kRuleCounterSync,
         "obs counter/histogram names must match the OBSERVABILITY.md "
         "counter catalog (both directions)"},
        {kRuleEnvRaw,
         "getenv outside the validated ROBOSHAPE_THREADS/ROBOSHAPE_SIMD "
         "helpers"},
        {kRuleUnusedSuppression,
         "NOLINT naming a roboshape_lint rule that suppressed nothing"},
    };
    return catalog;
}

bool
is_known_rule(std::string_view name)
{
    for (const RuleInfo &r : rule_catalog())
        if (r.name == name)
            return true;
    return false;
}

std::string
Finding::to_string() const
{
    std::string out = file;
    if (line != 0) {
        out += ":" + std::to_string(line);
        if (column != 0)
            out += ":" + std::to_string(column);
    }
    out += ": error[" + rule + "] " + message;
    if (!snippet.empty())
        out += "\n" + snippet;
    return out;
}

// ---------------------------------------------------------------------------
// Linter.

struct Linter::Suppression
{
    std::string rule;
    std::string file;
    std::size_t applies_line = 0; ///< Line whose findings it suppresses.
    std::size_t comment_line = 0;
    std::size_t comment_column = 0;
    bool used = false;
};

struct Linter::CounterUse
{
    std::string name;
    std::string file;
    std::size_t line = 0;
    std::size_t column = 0;
    std::string snippet;
};

Linter::Linter(LintConfig config) : config_(std::move(config)) {}

Linter::~Linter() = default;

bool
Linter::rule_enabled(std::string_view rule) const
{
    // unused-suppression is a meta-rule: it is always live so that
    // filtered runs still flag stale annotations of the filtered rules?
    // No — a filtered run does not *evaluate* the other rules, so their
    // suppressions are legitimately unused; only report it when every
    // rule ran.
    if (rule == kRuleUnusedSuppression)
        return config_.rules.empty();
    return config_.rules.empty() ||
           config_.rules.count(std::string(rule)) != 0;
}

void
Linter::set_counter_doc(std::string rel_path, std::string_view content)
{
    doc_path_ = std::move(rel_path);
    doc_catalog_.clear();

    // Parse the region between the begin/end markers; every `backticked`
    // span containing a '.' is a counter/histogram name.
    std::size_t line_no = 0;
    bool in_catalog = false;
    std::size_t pos = 0;
    while (pos <= content.size()) {
        const std::size_t eol = content.find('\n', pos);
        const std::string_view line =
            content.substr(pos, eol == std::string_view::npos
                                    ? std::string_view::npos
                                    : eol - pos);
        ++line_no;
        if (line.find("lint:counter-catalog:begin") !=
            std::string_view::npos) {
            in_catalog = true;
        } else if (line.find("lint:counter-catalog:end") !=
                   std::string_view::npos) {
            in_catalog = false;
        } else if (in_catalog) {
            std::size_t tick = line.find('`');
            while (tick != std::string_view::npos) {
                const std::size_t close = line.find('`', tick + 1);
                if (close == std::string_view::npos)
                    break;
                const std::string_view name =
                    line.substr(tick + 1, close - tick - 1);
                if (!name.empty() &&
                    name.find('.') != std::string_view::npos &&
                    doc_catalog_.find(std::string(name)) ==
                        doc_catalog_.end())
                    doc_catalog_.emplace(std::string(name), line_no);
                tick = line.find('`', close + 1);
            }
        }
        if (eol == std::string_view::npos)
            break;
        pos = eol + 1;
    }
}

bool
Linter::report(Finding f)
{
    if (!rule_enabled(f.rule))
        return false;
    if (f.rule != kRuleUnusedSuppression) {
        for (Suppression &s : suppressions_) {
            if (s.file == f.file && s.applies_line == f.line &&
                s.rule == f.rule) {
                s.used = true;
                return false;
            }
        }
    }
    findings_.push_back(std::move(f));
    return true;
}

void
Linter::add_file(const std::string &rel_path, const std::string &content)
{
    const LexResult lexed = lex(content);

    // -- Suppressions and warm-path region markers live in comments. ----
    struct WarmEvent
    {
        std::size_t line;
        std::size_t column;
        std::size_t offset;
        bool begin;
    };
    std::vector<WarmEvent> warm_events;

    for (const Comment &cm : lexed.comments) {
        const std::string_view text = trim(cm.text);
        if (text == kWarmBegin) {
            warm_events.push_back({cm.line, cm.column, cm.offset, true});
            continue;
        }
        if (text == kWarmEnd) {
            warm_events.push_back({cm.line, cm.column, cm.offset, false});
            continue;
        }

        // NOLINT(rule[,rule]) / NOLINTNEXTLINE(rule[,rule]).
        std::size_t at = 0;
        while ((at = cm.text.find("NOLINT", at)) != std::string::npos) {
            std::size_t cursor = at + 6;
            bool next_line = false;
            if (cm.text.compare(cursor, 8, "NEXTLINE") == 0) {
                next_line = true;
                cursor += 8;
            }
            if (cursor >= cm.text.size() || cm.text[cursor] != '(') {
                at = cursor;
                continue; // Bare NOLINT: clang-tidy's business, not ours.
            }
            const std::size_t close = cm.text.find(')', cursor);
            if (close == std::string::npos)
                break;
            std::string_view list(cm.text.data() + cursor + 1,
                                  close - cursor - 1);
            while (!list.empty()) {
                const std::size_t comma = list.find(',');
                const std::string_view rule =
                    trim(comma == std::string_view::npos
                             ? list
                             : list.substr(0, comma));
                list = comma == std::string_view::npos
                           ? std::string_view{}
                           : list.substr(comma + 1);
                if (rule.empty() || !is_known_rule(rule))
                    continue; // Unknown name: assume clang-tidy's rule.
                Suppression s;
                s.rule = std::string(rule);
                s.file = rel_path;
                s.applies_line =
                    next_line ? cm.end_line + 1 : cm.line;
                s.comment_line = cm.line;
                s.comment_column = cm.column;
                suppressions_.push_back(std::move(s));
            }
            at = close;
        }
    }

    // -- Warm-path intervals (inclusive line ranges). -------------------
    std::vector<std::pair<std::size_t, std::size_t>> warm_regions;
    std::size_t open_line = 0;
    bool open = false;
    for (const WarmEvent &ev : warm_events) {
        if (ev.begin) {
            if (open) {
                Finding f;
                f.rule = std::string(kRuleAllocWarm);
                f.file = rel_path;
                f.line = ev.line;
                f.column = ev.column;
                f.message = "nested 'lint: warm-path begin' — previous "
                            "region opened on line " +
                            std::to_string(open_line) + " never closed";
                report(std::move(f));
            }
            open = true;
            open_line = ev.line;
        } else {
            if (!open) {
                Finding f;
                f.rule = std::string(kRuleAllocWarm);
                f.file = rel_path;
                f.line = ev.line;
                f.column = ev.column;
                f.message =
                    "'lint: warm-path end' without a matching begin";
                report(std::move(f));
                continue;
            }
            warm_regions.emplace_back(open_line, ev.line);
            open = false;
        }
    }
    if (open) {
        Finding f;
        f.rule = std::string(kRuleAllocWarm);
        f.file = rel_path;
        f.line = open_line;
        f.message = "'lint: warm-path begin' region never closed";
        report(std::move(f));
    }

    const auto in_warm_region = [&warm_regions](std::size_t line) {
        for (const auto &[lo, hi] : warm_regions)
            if (line >= lo && line <= hi)
                return true;
        return false;
    };

    // -- Token rules. ---------------------------------------------------
    const std::vector<Token> &toks = lexed.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];

        const bool call_like =
            t.kind == TokKind::kIdentifier && i + 1 < toks.size() &&
            toks[i + 1].kind == TokKind::kPunct && toks[i + 1].text == "(";

        // banned-raw-parse -------------------------------------------------
        if (call_like && in_table(kRawParseFns, t.text) &&
            !raw_parse_allowed(rel_path)) {
            Finding f;
            f.rule = std::string(kRuleRawParse);
            f.file = rel_path;
            f.line = t.line;
            f.column = t.column;
            f.message = "bare '" + t.text +
                        "' accepts signs/whitespace/trailing garbage — "
                        "use core::parse_uint or a checked parser";
            f.snippet = make_snippet(content, t);
            report(std::move(f));
        }

        // banned-env-raw ---------------------------------------------------
        if (call_like && in_table(kEnvFns, t.text) &&
            !env_raw_allowed(rel_path)) {
            Finding f;
            f.rule = std::string(kRuleEnvRaw);
            f.file = rel_path;
            f.line = t.line;
            f.column = t.column;
            f.message = "raw '" + t.text +
                        "' — environment knobs must go through the "
                        "validated ROBOSHAPE_THREADS/ROBOSHAPE_SIMD "
                        "helpers";
            f.snippet = make_snippet(content, t);
            report(std::move(f));
        }

        // no-nondeterminism ------------------------------------------------
        if (!nondet_allowed(rel_path) &&
            ((call_like && in_table(kNondetCallFns, t.text)) ||
             (t.kind == TokKind::kIdentifier &&
              in_table(kNondetTypes, t.text)))) {
            Finding f;
            f.rule = std::string(kRuleNondet);
            f.file = rel_path;
            f.line = t.line;
            f.column = t.column;
            f.message =
                "'" + t.text +
                "' breaks bit-identical determinism — only src/obs/ "
                "wall tracing and bench/ timing may read clocks or "
                "entropy";
            f.snippet = make_snippet(content, t);
            report(std::move(f));
        }

        // no-alloc-warm-path -----------------------------------------------
        if (in_warm_region(t.line) && t.kind == TokKind::kIdentifier) {
            const bool is_new = t.text == "new";
            const bool is_delete =
                t.text == "delete" &&
                !(i > 0 && toks[i - 1].kind == TokKind::kPunct &&
                  toks[i - 1].text == "="); // `= delete` declarations.
            if (is_new || is_delete ||
                (call_like && in_table(kAllocFns, t.text))) {
                Finding f;
                f.rule = std::string(kRuleAllocWarm);
                f.file = rel_path;
                f.line = t.line;
                f.column = t.column;
                f.message = "'" + t.text +
                            "' inside a warm-path region — the warm "
                            "path contract is zero allocation "
                            "(docs/STATIC_ANALYSIS.md)";
                f.snippet = make_snippet(content, t);
                report(std::move(f));
            }
        }

        // json-writer-only -------------------------------------------------
        if (t.kind == TokKind::kString && !json_writer_allowed(rel_path) &&
            json_shaped(t.text)) {
            const bool streamed =
                i > 0 && toks[i - 1].kind == TokKind::kPunct &&
                toks[i - 1].text == "<<";
            if (streamed || inside_printf_call(toks, i)) {
                Finding f;
                f.rule = std::string(kRuleJsonWriter);
                f.file = rel_path;
                f.line = t.line;
                f.column = t.column;
                f.message =
                    "JSON-shaped literal emitted by hand — all JSON "
                    "goes through obs::JsonWriter (escaping + comma "
                    "bookkeeping live there)";
                f.snippet = make_snippet(content, t);
                report(std::move(f));
            }
        }

        // counter-name-sync: collect uses ----------------------------------
        if (t.kind == TokKind::kIdentifier &&
            (t.text == "ROBOSHAPE_OBS_COUNT" ||
             t.text == "ROBOSHAPE_OBS_RECORD") &&
            i + 2 < toks.size() && toks[i + 1].text == "(" &&
            toks[i + 2].kind == TokKind::kString) {
            CounterUse use;
            use.name = toks[i + 2].text;
            use.file = rel_path;
            use.line = toks[i + 2].line;
            use.column = toks[i + 2].column;
            use.snippet = make_snippet(content, toks[i + 2]);
            counter_uses_.push_back(std::move(use));
        }
    }
}

std::vector<Finding>
Linter::finish()
{
    finished_ = true;

    // counter-name-sync: code -> doc (one finding per distinct name).
    std::set<std::string> reported_missing;
    std::set<std::string> used_names;
    for (const CounterUse &use : counter_uses_) {
        used_names.insert(use.name);
        if (use.name.rfind("test.", 0) == 0)
            continue; // Test-local scratch counters are exempt.
        if (!doc_path_.empty() &&
            doc_catalog_.find(use.name) == doc_catalog_.end() &&
            reported_missing.insert(use.name).second) {
            Finding f;
            f.rule = std::string(kRuleCounterSync);
            f.file = use.file;
            f.line = use.line;
            f.column = use.column;
            f.message = "counter '" + use.name +
                        "' is not listed in the " + doc_path_ +
                        " counter catalog";
            f.snippet = use.snippet;
            report(std::move(f));
        }
    }

    // counter-name-sync: doc -> code.
    if (config_.doc_to_code && !doc_path_.empty()) {
        for (const auto &[name, line] : doc_catalog_) {
            if (used_names.count(name) != 0)
                continue;
            Finding f;
            f.rule = std::string(kRuleCounterSync);
            f.file = doc_path_;
            f.line = line;
            f.message = "catalog entry '" + name +
                        "' does not appear at any "
                        "ROBOSHAPE_OBS_COUNT/RECORD site";
            report(std::move(f));
        }
    }

    // unused-suppression.
    for (const Suppression &s : suppressions_) {
        if (s.used)
            continue;
        Finding f;
        f.rule = std::string(kRuleUnusedSuppression);
        f.file = s.file;
        f.line = s.comment_line;
        f.column = s.comment_column;
        f.message = "NOLINT(" + s.rule +
                    ") suppressed nothing — remove it or fix the rule "
                    "name";
        report(std::move(f));
    }

    std::sort(findings_.begin(), findings_.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.column != b.column)
                      return a.column < b.column;
                  return a.rule < b.rule;
              });
    return findings_;
}

// ---------------------------------------------------------------------------

std::string
findings_to_json(const std::vector<Finding> &findings)
{
    obs::JsonWriter w(2);
    w.begin_object();
    w.kv("schema", "roboshape.lint_report/1");
    w.key("findings").begin_array();
    for (const Finding &f : findings) {
        w.begin_object();
        w.kv("rule", f.rule);
        w.kv("file", f.file);
        w.kv("line", static_cast<std::uint64_t>(f.line));
        w.kv("column", static_cast<std::uint64_t>(f.column));
        w.kv("message", f.message);
        w.end_object();
    }
    w.end_array();
    w.kv("count", static_cast<std::uint64_t>(findings.size()));
    w.end_object();
    return w.str();
}

std::vector<std::string>
collect_repo_files(const std::string &root)
{
    namespace fs = std::filesystem;
    static constexpr std::array<std::string_view, 5> kScanRoots = {
        "src", "tools", "bench", "tests", "examples"};
    static constexpr std::array<std::string_view, 5> kExtensions = {
        ".h", ".hpp", ".cc", ".cpp", ".inl"};

    std::vector<std::string> out;
    for (const std::string_view dir : kScanRoots) {
        const fs::path base = fs::path(root) / dir;
        if (!fs::exists(base))
            continue;
        for (const auto &entry : fs::recursive_directory_iterator(base)) {
            if (!entry.is_regular_file())
                continue;
            const std::string ext = entry.path().extension().string();
            if (!in_table(kExtensions, ext))
                continue;
            std::string rel =
                fs::relative(entry.path(), root).generic_string();
            // The fixture corpus intentionally violates every rule.
            if (rel.rfind("tests/lint_corpus/", 0) == 0)
                continue;
            out.push_back(std::move(rel));
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace lint
} // namespace roboshape
