/**
 * @file
 * Strict JSON syntax checker over stdin (exit 0 = valid RFC 8259).
 *
 * The CI daemon-smoke job pipes every roboshaped response body through
 * this so "the endpoint answered" also means "the endpoint answered with
 * JSON that parses", using the same obs::validate_json the trace-export
 * tests trust.  Also handy interactively:
 *
 *   curl -s localhost:8080/v1/sweep -d '{"robot":"iiwa"}' | json_check
 */

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/json.h"

int
main()
{
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    const std::string text = buffer.str();
    if (text.empty()) {
        std::fprintf(stderr, "json_check: empty input\n");
        return 1;
    }
    std::string error;
    if (!roboshape::obs::validate_json(text, &error)) {
        std::fprintf(stderr, "json_check: invalid JSON: %s\n",
                     error.c_str());
        return 1;
    }
    return 0;
}
