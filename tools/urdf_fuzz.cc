/**
 * @file
 * Deterministic fault-injection harness for the URDF/XML ingestion front
 * end (see docs/INGESTION.md).
 *
 * Invariant under test: for EVERY input — however malformed — the parser
 * either returns a RobotModel or throws a typed parse error (UrdfError /
 * XmlError).  It must never crash, hang, leak a non-parser exception
 * (std::invalid_argument, std::out_of_range, ...), and the report-mode
 * entry point `parse_urdf_checked` must never throw at all.  The two modes
 * must also agree: strict succeeds iff the checked report is clean, and on
 * success both produce bit-identical models.
 *
 * Seeds are the bundled robot-library URDFs plus every file in the
 * committed adversarial corpus (data/corpus/).  Mutations come from
 * io::mutate_urdf and are a pure function of the iteration index, so any
 * failure is reproducible with --replay <iteration>.  The mutation storm
 * shards iterations across the work-stealing executor (ROBOSHAPE_THREADS
 * pins the width); the reported violation is the smallest violating
 * iteration index, replayed serially, so output is independent of the
 * worker count.
 *
 * Exit code 0 = invariant held for all iterations; 1 = violation (the
 * offending seed, mutation trail, and document are printed).
 *
 * Usage:
 *   urdf_fuzz [--iterations N] [--seed S] [--corpus DIR] [--replay I]
 */

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <typeinfo>
#include <vector>

#include "core/executor.h"
#include "core/parse_uint.h"
#include "io/fault_injection.h"
#include "topology/robot_library.h"
#include "topology/urdf_parser.h"
#include "topology/xml.h"

namespace {

using roboshape::io::mutate_urdf;
using roboshape::io::mutation_name;
using roboshape::io::MutationResult;
using roboshape::topology::all_robot_urdfs;
using roboshape::topology::NamedUrdf;
using roboshape::topology::parse_urdf;
using roboshape::topology::parse_urdf_checked;
using roboshape::topology::RobotModel;
using roboshape::topology::UrdfError;
using roboshape::topology::UrdfParseResult;
using roboshape::topology::XmlError;

struct Options
{
    std::uint64_t iterations = 12000;
    std::uint64_t seed = 0x5350AE5Cu; // arbitrary fixed default
    std::string corpus_dir;
    std::int64_t replay = -1; // single iteration to re-run verbosely
};

struct Stats
{
    std::uint64_t parsed_ok = 0;
    std::uint64_t urdf_errors = 0;
    std::uint64_t xml_errors = 0;
    std::map<std::string, std::uint64_t> by_code;
};

/** Outcome of one strict parse attempt. */
enum class Outcome
{
    kModel,
    kTypedError,
    kViolation,
};

void
print_document(const std::string &text)
{
    constexpr std::size_t kMax = 4096;
    std::cerr << "---- begin document (" << text.size() << " bytes"
              << (text.size() > kMax ? ", truncated" : "") << ") ----\n"
              << text.substr(0, kMax)
              << "\n---- end document ----\n";
}

/**
 * Runs both parser modes on @p text and checks the full invariant.
 * Returns kViolation on any breach, printing why to @p err (the storm
 * workers pass a discarded stream; the serial replay passes std::cerr).
 */
Outcome
check_invariant(const std::string &text, Stats &stats, std::ostream &err)
{
    bool strict_ok = false;
    RobotModel strict_model;
    try {
        strict_model = parse_urdf(text);
        strict_ok = true;
        ++stats.parsed_ok;
    } catch (const UrdfError &e) {
        ++stats.urdf_errors;
        ++stats.by_code[to_string(e.code())];
    } catch (const XmlError &e) {
        ++stats.xml_errors;
        ++stats.by_code[to_string(e.code())];
    } catch (const std::exception &e) {
        err << "INVARIANT VIOLATION: parse_urdf leaked a non-parser "
               "exception: "
            << typeid(e).name() << ": " << e.what() << "\n";
        return Outcome::kViolation;
    } catch (...) {
        err << "INVARIANT VIOLATION: parse_urdf leaked an unknown "
               "exception\n";
        return Outcome::kViolation;
    }

    UrdfParseResult checked;
    try {
        checked = parse_urdf_checked(text);
    } catch (const std::exception &e) {
        err << "INVARIANT VIOLATION: parse_urdf_checked threw ("
            << typeid(e).name() << ": " << e.what() << ")\n";
        return Outcome::kViolation;
    } catch (...) {
        err << "INVARIANT VIOLATION: parse_urdf_checked threw an "
               "unknown exception\n";
        return Outcome::kViolation;
    }

    if (strict_ok != checked.ok()) {
        err << "INVARIANT VIOLATION: strict/checked disagree (strict "
            << (strict_ok ? "ok" : "error") << ", checked "
            << (checked.ok() ? "ok" : "error") << ")\n"
            << checked.report.to_string();
        return Outcome::kViolation;
    }
    if (!strict_ok)
        return Outcome::kTypedError;

    // Success path: the two modes must produce bit-identical models.
    const RobotModel &a = strict_model;
    const RobotModel &b = *checked.model;
    bool same = a.name() == b.name() && a.num_links() == b.num_links();
    for (std::size_t i = 0; same && i < a.num_links(); ++i) {
        const auto &la = a.link(i);
        const auto &lb = b.link(i);
        same = la.name == lb.name && la.parent == lb.parent &&
               la.joint.type() == lb.joint.type() &&
               std::memcmp(&la.joint.axis(), &lb.joint.axis(),
                           sizeof(la.joint.axis())) == 0 &&
               std::memcmp(&la.x_tree, &lb.x_tree, sizeof(la.x_tree)) == 0 &&
               std::memcmp(&la.inertia, &lb.inertia,
                           sizeof(la.inertia)) == 0;
    }
    if (!same) {
        err << "INVARIANT VIOLATION: strict and checked parses "
               "produced different models\n";
        return Outcome::kViolation;
    }
    return Outcome::kModel;
}

/** Folds the per-lane tallies of the parallel storm into @p into.  Plain
 *  summation: the totals are independent of how iterations were sharded. */
void
merge_stats(Stats &into, const Stats &from)
{
    into.parsed_ok += from.parsed_ok;
    into.urdf_errors += from.urdf_errors;
    into.xml_errors += from.xml_errors;
    for (const auto &[code, count] : from.by_code)
        into.by_code[code] += count;
}

std::vector<NamedUrdf>
load_seeds(const Options &opt)
{
    std::vector<NamedUrdf> seeds = all_robot_urdfs();
    if (!opt.corpus_dir.empty()) {
        std::vector<std::filesystem::path> paths;
        for (const auto &entry :
             std::filesystem::directory_iterator(opt.corpus_dir))
            if (entry.is_regular_file())
                paths.push_back(entry.path());
        std::sort(paths.begin(), paths.end()); // deterministic order
        for (const auto &p : paths) {
            std::ifstream in(p, std::ios::binary);
            std::ostringstream ss;
            ss << in.rdbuf();
            seeds.push_back({p.filename().string(), ss.str()});
        }
    }
    return seeds;
}

/**
 * Strict numeric flag: the whole token must be a decimal integer in
 * [min, max].  `--iterations garbage` used to strtoull to 0 and the run
 * "passed" having tested nothing — that silent vacuity is exactly the
 * failure mode this harness exists to catch in the parser, so the
 * harness's own flags hold themselves to the same standard.
 */
bool
parse_flag_uint(const std::string &flag, const char *value,
                std::uint64_t min, std::uint64_t max, std::uint64_t &out)
{
    if (!value) {
        std::cerr << "error: " << flag << " requires a value\n";
        return false;
    }
    const auto parsed = roboshape::core::parse_uint(value, min, max);
    if (!parsed) {
        std::cerr << "error: invalid value '" << value << "' for " << flag
                  << " (expected an unsigned integer in [" << min << ", "
                  << max << "])\n";
        return false;
    }
    out = *parsed;
    return true;
}

bool
parse_args(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--iterations") {
            // 0 iterations is rejected explicitly: a fuzz run that tests
            // nothing must not exit 0.
            if (!parse_flag_uint(arg, next(), 1,
                                 std::numeric_limits<std::uint64_t>::max(),
                                 opt.iterations))
                return false;
        } else if (arg == "--seed") {
            if (!parse_flag_uint(arg, next(), 0,
                                 std::numeric_limits<std::uint64_t>::max(),
                                 opt.seed))
                return false;
        } else if (arg == "--corpus") {
            const char *v = next();
            if (!v) {
                std::cerr << "error: --corpus requires a value\n";
                return false;
            }
            opt.corpus_dir = v;
        } else if (arg == "--replay") {
            std::uint64_t replay = 0;
            if (!parse_flag_uint(
                    arg, next(), 0,
                    static_cast<std::uint64_t>(
                        std::numeric_limits<std::int64_t>::max()),
                    replay))
                return false;
            opt.replay = static_cast<std::int64_t>(replay);
        } else {
            std::cerr << "error: unknown argument '" << arg << "'\n"
                      << "usage: urdf_fuzz [--iterations N] [--seed S] "
                         "[--corpus DIR] [--replay I]\n";
            return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parse_args(argc, argv, opt))
        return 2;

    const std::vector<NamedUrdf> seeds = load_seeds(opt);
    if (seeds.empty()) {
        std::cerr << "no seeds\n";
        return 2;
    }
    std::cout << "urdf_fuzz: " << seeds.size() << " seeds ("
              << all_robot_urdfs().size() << " library robots, "
              << seeds.size() - all_robot_urdfs().size()
              << " corpus files), " << opt.iterations << " iterations, "
              << "seed " << opt.seed << "\n";

    Stats stats;

    // Phase 0: every pristine seed must already satisfy the invariant, and
    // every *library* seed must parse to a model (they are well-formed by
    // construction; corpus files are allowed to be malformed).
    const std::size_t library_count = all_robot_urdfs().size();
    for (std::size_t s = 0; s < seeds.size(); ++s) {
        const Outcome out = check_invariant(seeds[s].text, stats, std::cerr);
        if (out == Outcome::kViolation ||
            (s < library_count && out != Outcome::kModel)) {
            std::cerr << "pristine seed '" << seeds[s].name
                      << "' violated the invariant\n";
            print_document(seeds[s].text);
            return 1;
        }
    }

    // Phase 1: deterministic mutation storm.  Iteration i derives its
    // mutation seed purely from (opt.seed, i), so --replay reproduces any
    // failure exactly.  The storm shards iterations across the executor;
    // each lane tallies into its own Stats and violations record only an
    // iteration index, so the merged totals and the reported (smallest)
    // violating iteration are independent of the sharding.  --replay runs
    // its single iteration serially and verbosely.
    if (opt.replay >= 0) {
        const std::uint64_t i = static_cast<std::uint64_t>(opt.replay);
        const std::uint64_t mseed = opt.seed * 0x9E3779B97F4A7C15ull + i;
        const NamedUrdf &seed_doc = seeds[mseed % seeds.size()];
        const MutationResult mut = mutate_urdf(seed_doc.text, mseed);
        std::cerr << "replay iteration " << i << ": seed '" << seed_doc.name
                  << "', mutations:";
        for (const auto k : mut.applied)
            std::cerr << " " << mutation_name(k);
        std::cerr << "\n";
        print_document(mut.text);
        if (check_invariant(mut.text, stats, std::cerr) ==
            Outcome::kViolation)
            return 1;
    } else {
        roboshape::core::Executor &exec =
            roboshape::core::Executor::instance();
        const std::size_t lanes = exec.resolve_width(opt.iterations);
        std::vector<Stats> lane_stats(lanes);
        constexpr std::uint64_t kNone = ~std::uint64_t{0};
        std::atomic<std::uint64_t> first_violation{kNone};
        exec.parallel_for_lanes(
            opt.iterations,
            [&](std::uint64_t i, std::size_t lane) {
                const std::uint64_t mseed =
                    opt.seed * 0x9E3779B97F4A7C15ull + i;
                const NamedUrdf &seed_doc = seeds[mseed % seeds.size()];
                const MutationResult mut = mutate_urdf(seed_doc.text, mseed);
                std::ostringstream quiet; // per-call, discarded
                if (check_invariant(mut.text, lane_stats[lane], quiet) ==
                    Outcome::kViolation) {
                    std::uint64_t cur =
                        first_violation.load(std::memory_order_relaxed);
                    while (i < cur &&
                           !first_violation.compare_exchange_weak(cur, i))
                        ;
                }
            },
            /*requested=*/0);
        for (const Stats &s : lane_stats)
            merge_stats(stats, s);

        const std::uint64_t violation = first_violation.load();
        if (violation != kNone) {
            // Replay the smallest violating iteration serially so the
            // verbose diagnosis is printed exactly once, in order.
            const std::uint64_t mseed =
                opt.seed * 0x9E3779B97F4A7C15ull + violation;
            const NamedUrdf &seed_doc = seeds[mseed % seeds.size()];
            const MutationResult mut = mutate_urdf(seed_doc.text, mseed);
            Stats scratch;
            check_invariant(mut.text, scratch, std::cerr);
            std::cerr << "iteration " << violation << " (seed doc '"
                      << seed_doc.name << "', mutations:";
            for (const auto k : mut.applied)
                std::cerr << " " << mutation_name(k);
            std::cerr << ") violated the invariant; reproduce with:\n  "
                      << argv[0] << " --seed " << opt.seed << " --replay "
                      << violation;
            if (!opt.corpus_dir.empty())
                std::cerr << " --corpus " << opt.corpus_dir;
            std::cerr << "\n";
            print_document(mut.text);
            return 1;
        }
    }

    std::cout << "invariant held: " << stats.parsed_ok << " parsed, "
              << stats.urdf_errors << " typed URDF errors, "
              << stats.xml_errors << " typed XML errors\n";
    std::cout << "error-code histogram:\n";
    for (const auto &[code, count] : stats.by_code)
        std::cout << "  " << code << ": " << count << "\n";
    return 0;
}
